package overlay

import (
	"testing"

	"fpgadbg/internal/bench"
	"fpgadbg/internal/core"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/synth"
)

// testLayout builds a reserved-track layout of a small benchmark.
func testLayout(t testing.TB) *core.Layout {
	t.Helper()
	info, err := bench.ByName("9sym")
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := synth.TechMap(info.Build())
	if err != nil {
		t.Fatal(err)
	}
	l, err := core.BuildMapped(mapped, core.Spec{
		Seed: 1, PlaceEffort: 0.25, TileFrac: 0.25, OverlayReserve: DefaultReserve,
	})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestBuildCoversEveryLiveOutput(t *testing.T) {
	l := testLayout(t)
	p, err := Build(l, DefaultChannels)
	if err != nil {
		t.Fatal(err)
	}
	if p.Channels != DefaultChannels || len(p.Readout) != DefaultChannels {
		t.Fatalf("got %d channels, %d readout sites", p.Channels, len(p.Readout))
	}
	covered := 0
	for ci := range l.NL.Cells {
		c := &l.NL.Cells[ci]
		if c.Dead || c.Out == netlist.NilNet || l.NL.Nets[c.Out].Dead {
			continue
		}
		name := l.NL.NetName(c.Out)
		if !p.Covers(name) {
			t.Fatalf("live output %q outside overlay reach", name)
		}
		ch, ok := p.Channel(name)
		if !ok || ch < 0 || ch >= p.Channels {
			t.Fatalf("net %q on bad channel %d", name, ch)
		}
		covered++
	}
	if covered == 0 || covered != p.Taps {
		t.Fatalf("covered %d outputs, plan says %d taps", covered, p.Taps)
	}
	if p.TrunkLen == 0 {
		t.Fatal("trunks routed with zero wirelength")
	}
	// The locked trunk wiring must not break any layout invariant: the
	// capacity check counts the fixed wiring against every channel
	// segment.
	if err := core.VerifyLayout(l); err != nil {
		t.Fatalf("overlay layout invalid: %v", err)
	}
	if len(l.FixedWiring()) == 0 {
		t.Fatal("trunk wiring was not locked into the layout")
	}
}

func TestCloneInheritsTrunkWiring(t *testing.T) {
	l := testLayout(t)
	p, err := Build(l, 0) // 0 selects DefaultChannels
	if err != nil {
		t.Fatal(err)
	}
	cl := l.Clone()
	if got, want := len(cl.FixedWiring()), len(l.FixedWiring()); got != want {
		t.Fatalf("clone has %d fixed edges, want %d", got, want)
	}
	if err := core.VerifyLayout(cl); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
	// The shared plan binds selectors to any clone.
	sel := p.NewSelector(cl)
	if sel.Plan() != p {
		t.Fatal("selector lost its plan")
	}
}

func TestPartitionTimeMultiplexesConflicts(t *testing.T) {
	l := testLayout(t)
	p, err := Build(l, 2)
	if err != nil {
		t.Fatal(err)
	}
	sel := p.NewSelector(l)
	// Three nets on the same channel must spread over three batches.
	var same []string
	for ci := range l.NL.Cells {
		c := &l.NL.Cells[ci]
		if c.Dead || c.Out == netlist.NilNet {
			continue
		}
		name := l.NL.NetName(c.Out)
		if ch, ok := p.Channel(name); ok && ch == 0 {
			same = append(same, name)
			if len(same) == 3 {
				break
			}
		}
	}
	if len(same) < 3 {
		t.Skip("design too small for three same-channel taps")
	}
	batches, unreachable := sel.Partition(same)
	if len(unreachable) != 0 {
		t.Fatalf("covered nets reported unreachable: %v", unreachable)
	}
	if len(batches) != 3 {
		t.Fatalf("3 same-channel nets in %d batches, want 3", len(batches))
	}
	for _, b := range batches {
		if err := sel.Select(b); err != nil {
			t.Fatalf("conflict-free batch rejected: %v", err)
		}
	}
	// Selecting two of them at once must be rejected with the
	// time-multiplex hint.
	if err := sel.Select(same[:2]); err == nil {
		t.Fatal("same-channel conflict accepted")
	}
	// A net that does not exist is outside reach.
	if _, unr := sel.Partition([]string{"no-such-net"}); len(unr) != 1 {
		t.Fatal("unknown net not reported unreachable")
	}
	if err := sel.Select([]string{"no-such-net"}); err == nil {
		t.Fatal("unreachable net accepted")
	}
}

func TestRollbackRestoresSelection(t *testing.T) {
	l := testLayout(t)
	p, err := Build(l, DefaultChannels)
	if err != nil {
		t.Fatal(err)
	}
	sel := p.NewSelector(l)
	batches, _ := sel.Partition(pickOnePerChannel(l, p))
	if len(batches) == 0 {
		t.Fatal("no selectable taps")
	}
	if err := sel.Select(batches[0]); err != nil {
		t.Fatal(err)
	}
	before := sel.Selected()
	digest := l.StateDigest()

	cp := l.Checkpoint()
	// A different batch inside the transaction...
	second, _ := sel.Partition(pickOnePerChannel2(l, p))
	if len(second) > 0 {
		if err := sel.Select(second[0]); err != nil {
			t.Fatal(err)
		}
	}
	// ...is undone by rollback, selection and layout state alike.
	if err := l.Rollback(cp); err != nil {
		t.Fatal(err)
	}
	after := sel.Selected()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("channel %d: rollback left %q, want %q", i, after[i], before[i])
		}
	}
	if l.StateDigest() != digest {
		t.Fatal("rollback did not restore the layout digest")
	}
}

// pickOnePerChannel returns the first covered net of each channel.
func pickOnePerChannel(l *core.Layout, p *Plan) []string {
	out := make([]string, 0, p.Channels)
	seen := make(map[int]bool)
	for ci := range l.NL.Cells {
		c := &l.NL.Cells[ci]
		if c.Dead || c.Out == netlist.NilNet {
			continue
		}
		name := l.NL.NetName(c.Out)
		if ch, ok := p.Channel(name); ok && !seen[ch] {
			seen[ch] = true
			out = append(out, name)
		}
	}
	return out
}

// pickOnePerChannel2 returns the second covered net of each channel.
func pickOnePerChannel2(l *core.Layout, p *Plan) []string {
	out := make([]string, 0, p.Channels)
	seen := make(map[int]int)
	for ci := range l.NL.Cells {
		c := &l.NL.Cells[ci]
		if c.Dead || c.Out == netlist.NilNet {
			continue
		}
		name := l.NL.NetName(c.Out)
		if ch, ok := p.Channel(name); ok {
			seen[ch]++
			if seen[ch] == 2 {
				out = append(out, name)
			}
		}
	}
	return out
}
