package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"fpgadbg/internal/service"
)

// The service load test: hammer an in-process campaign service with a
// concurrent burst of debugging campaigns over a small design mix and
// measure what the artifact cache and worker pool buy — throughput,
// sojourn-latency percentiles, the hit-vs-miss service-time speedup, and
// determinism of results under concurrency. cmd/benchrepro -json-service
// serializes the report to BENCH_service.json so the service's
// performance trajectory is tracked across PRs.

// LatencyMs summarizes a latency sample in milliseconds.
type LatencyMs struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

func summarize(ms []float64) LatencyMs {
	if len(ms) == 0 {
		return LatencyMs{}
	}
	sorted := append([]float64(nil), ms...)
	sort.Float64s(sorted)
	pick := func(q float64) float64 {
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}
	return LatencyMs{
		P50: pick(0.50), P90: pick(0.90), P99: pick(0.99),
		Mean: mean(sorted), Max: sorted[len(sorted)-1],
	}
}

// ServiceLoadReport is the outcome of one load-test run.
type ServiceLoadReport struct {
	Campaigns     int `json:"campaigns"`
	DistinctSpecs int `json:"distinct_specs"`
	Workers       int `json:"workers"`
	// Cold phase: fresh service, empty cache, all campaigns submitted in
	// one burst. Latency is sojourn time (submit → finished, queueing
	// included); ServiceTime is the worker-side wall per campaign.
	ColdWallMs      float64   `json:"cold_wall_ms"`
	ColdThroughput  float64   `json:"cold_campaigns_per_sec"`
	ColdLatency     LatencyMs `json:"cold_latency_ms"`
	ColdServiceTime LatencyMs `json:"cold_service_time_ms"`
	// Warm phase: the identical burst resubmitted to the same service —
	// every artifact get hits.
	WarmWallMs      float64   `json:"warm_wall_ms"`
	WarmThroughput  float64   `json:"warm_campaigns_per_sec"`
	WarmLatency     LatencyMs `json:"warm_latency_ms"`
	WarmServiceTime LatencyMs `json:"warm_service_time_ms"`
	// MissMeanMs / HitMeanMs split cold-phase service time by whether the
	// campaign had to build at least one artifact; CacheSpeedup is their
	// ratio — the measured hit-vs-miss effect of the content-addressed
	// cache (synth/place/compile skipped).
	MissMeanMs   float64 `json:"miss_mean_ms"`
	HitMeanMs    float64 `json:"hit_mean_ms"`
	CacheSpeedup float64 `json:"cache_speedup"`
	// Clean counts campaigns that converged to a passing design (out of
	// 2×Campaigns runs).
	Clean int `json:"clean"`
	// Deterministic: within each phase, repeats of the same spec produced
	// identical result digests. SeedStable: an independent fresh service
	// reproduced the cold phase's digests exactly.
	Deterministic bool               `json:"deterministic"`
	SeedStable    bool               `json:"seed_stable"`
	Cache         service.CacheStats `json:"cache"`
}

// loadSpecs builds the campaign mix: fault seeds 1..4 over the design
// set, cycled until n campaigns. cfg.Designs filters the mix (default:
// the three small designs, keeping the standard run fast); cfg.Seed
// drives layout and stimulus randomness in every spec.
func loadSpecs(n int, cfg Config) []service.Spec {
	designs := cfg.Designs
	if len(designs) == 0 {
		designs = []string{"9sym", "c880", "styr"}
	}
	var distinct []service.Spec
	for _, d := range designs {
		for fs := int64(1); fs <= 4; fs++ {
			distinct = append(distinct, service.Spec{
				Design: d, FaultSeed: fs, Seed: cfg.Seed,
				PlaceEffort: cfg.PlaceEffort, TileFrac: 0.25, Words: 4, Cycles: 2,
			})
		}
	}
	out := make([]service.Spec, n)
	for i := range out {
		out[i] = distinct[i%len(distinct)]
	}
	return out
}

func loadSpecKey(sp service.Spec) string {
	return fmt.Sprintf("%s/%d", sp.Design, sp.FaultSeed)
}

// runBurst submits every spec at once and waits for all results,
// returning per-campaign sojourn latencies, service times and digests.
func runBurst(svc *service.Service, specs []service.Spec) (sojournMs, serviceMs []float64, digests map[string]string, results []*service.Result, err error) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	ids := make([]string, len(specs))
	for i, sp := range specs {
		id, err := svc.Submit(sp)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		ids[i] = id
	}
	digests = make(map[string]string)
	for i, id := range ids {
		res, err := svc.Wait(ctx, id)
		if err != nil {
			return nil, nil, nil, nil, fmt.Errorf("experiments: campaign %s (%s): %w", id, loadSpecKey(specs[i]), err)
		}
		st, err := svc.Status(id)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		sojournMs = append(sojournMs, float64(st.Finished.Sub(st.Queued).Microseconds())/1000)
		serviceMs = append(serviceMs, res.WallMs)
		key := loadSpecKey(specs[i])
		if prev, ok := digests[key]; ok && prev != res.Digest {
			digests[key] = "NONDETERMINISTIC"
		} else if !ok {
			digests[key] = res.Digest
		}
		results = append(results, res)
	}
	return sojournMs, serviceMs, digests, results, nil
}

// ServiceLoadTest runs the cold burst, the warm burst and the
// seed-stability re-run. campaigns defaults to 64, workers to the
// service default (GOMAXPROCS).
func ServiceLoadTest(cfg Config, campaigns, workers int) (*ServiceLoadReport, error) {
	cfg = cfg.withDefaults()
	if campaigns <= 0 {
		campaigns = 64
	}
	specs := loadSpecs(campaigns, cfg)
	distinct := make(map[string]bool)
	for _, sp := range specs {
		distinct[loadSpecKey(sp)] = true
	}

	svc := service.New(service.Config{Workers: workers})
	defer svc.Close()
	rep := &ServiceLoadReport{
		Campaigns:     campaigns,
		DistinctSpecs: len(distinct),
		Workers:       svc.Stats().Workers,
		Deterministic: true,
	}

	// Cold burst.
	start := time.Now()
	sojourn, svcTime, coldDigests, coldResults, err := runBurst(svc, specs)
	if err != nil {
		return nil, err
	}
	coldWall := time.Since(start)
	rep.ColdWallMs = float64(coldWall.Microseconds()) / 1000
	rep.ColdThroughput = float64(campaigns) / coldWall.Seconds()
	rep.ColdLatency = summarize(sojourn)
	rep.ColdServiceTime = summarize(svcTime)
	// Only campaigns that actually built an artifact count as misses.
	// Cold-phase campaigns with CacheMisses == 0 latched onto a sibling's
	// in-flight build (singleflight) and paid most of its wall time, so
	// they belong to neither side of the hit-vs-miss comparison; genuine
	// hit times come from the warm phase below.
	var missMs, hitMs []float64
	for i, res := range coldResults {
		if res.Clean {
			rep.Clean++
		}
		if res.CacheMisses > 0 {
			missMs = append(missMs, svcTime[i])
		}
	}
	rep.MissMeanMs = mean(missMs)

	// Warm burst: identical specs, cache fully resident.
	start = time.Now()
	sojourn, svcTime, warmDigests, warmResults, err := runBurst(svc, specs)
	if err != nil {
		return nil, err
	}
	warmWall := time.Since(start)
	rep.WarmWallMs = float64(warmWall.Microseconds()) / 1000
	rep.WarmThroughput = float64(campaigns) / warmWall.Seconds()
	rep.WarmLatency = summarize(sojourn)
	rep.WarmServiceTime = summarize(svcTime)
	for i, res := range warmResults {
		if res.Clean {
			rep.Clean++
		}
		if res.CacheMisses == 0 {
			hitMs = append(hitMs, svcTime[i])
		}
	}
	rep.HitMeanMs = mean(hitMs)
	if rep.HitMeanMs > 0 {
		rep.CacheSpeedup = rep.MissMeanMs / rep.HitMeanMs
	}
	rep.Cache = svc.Cache().Stats()

	for key, d := range coldDigests {
		if d == "NONDETERMINISTIC" || warmDigests[key] != d {
			rep.Deterministic = false
		}
	}

	// Seed stability: a fresh service must reproduce every digest.
	svc2 := service.New(service.Config{Workers: workers})
	defer svc2.Close()
	_, _, digests2, _, err := runBurst(svc2, specs)
	if err != nil {
		return nil, err
	}
	rep.SeedStable = true
	for key, d := range coldDigests {
		if digests2[key] != d {
			rep.SeedStable = false
		}
	}
	return rep, nil
}

// FormatServiceLoad renders the report.
func FormatServiceLoad(r *ServiceLoadReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Service load test: %d campaigns (%d distinct specs) over %d workers\n",
		r.Campaigns, r.DistinctSpecs, r.Workers)
	fmt.Fprintf(&b, "%-6s %10s %12s %28s %28s\n", "phase", "wall", "throughput", "sojourn p50/p90/p99 (ms)", "service p50/p90/p99 (ms)")
	row := func(name string, wallMs, thr float64, lat, st LatencyMs) {
		fmt.Fprintf(&b, "%-6s %9.0fms %9.1f/s %12.1f %6.1f %6.1f %12.1f %6.1f %6.1f\n",
			name, wallMs, thr, lat.P50, lat.P90, lat.P99, st.P50, st.P90, st.P99)
	}
	row("cold", r.ColdWallMs, r.ColdThroughput, r.ColdLatency, r.ColdServiceTime)
	row("warm", r.WarmWallMs, r.WarmThroughput, r.WarmLatency, r.WarmServiceTime)
	fmt.Fprintf(&b, "artifact cache: %d hits, %d misses, %d dedups, %d evictions (%d entries, %.1f MiB)\n",
		r.Cache.Hits, r.Cache.Misses, r.Cache.Dedups, r.Cache.Evictions,
		r.Cache.Entries, float64(r.Cache.Bytes)/(1<<20))
	fmt.Fprintf(&b, "hit-vs-miss service time: %.1fms vs %.1fms — %.1fx from the cache\n",
		r.HitMeanMs, r.MissMeanMs, r.CacheSpeedup)
	fmt.Fprintf(&b, "clean %d/%d, deterministic=%v, seed-stable=%v\n",
		r.Clean, 2*r.Campaigns, r.Deterministic, r.SeedStable)
	return b.String()
}
