package experiments

import "sort"

// mean returns the arithmetic mean (0 for empty input).
func mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

// median returns the middle value (average of the two middles for even
// counts; 0 for empty input).
func median(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}
