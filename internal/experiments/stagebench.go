package experiments

// The telemetry benchmark behind cmd/benchrepro -json-stages: where does
// a repair campaign's wall time actually go, stage by stage, and what
// does collecting that answer cost? One cold repair campaign per design
// yields the per-stage exclusive-time shares (synth through eco-verify);
// warm repeated campaigns on a telemetry-enabled versus a NoTelemetry
// service measure the instrumentation overhead, which must stay within a
// few percent for the fabric to be left on in production.

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"fpgadbg/internal/obs"
	"fpgadbg/internal/service"
)

// StageShare is one pipeline stage's contribution to a campaign.
type StageShare struct {
	Stage  string `json:"stage"`
	DurUs  int64  `json:"dur_us"`
	ExclUs int64  `json:"excl_us"`
	Count  int    `json:"count"`
	// SharePct is the stage's exclusive time as a percentage of the sum
	// of all stages' exclusive times (instrumented time partitions, so
	// shares add up to 100).
	SharePct float64 `json:"share_pct"`
}

// StageBenchRow is one design's cold repair campaign, flattened.
type StageBenchRow struct {
	Design   string           `json:"design"`
	Detected bool             `json:"detected"`
	WallUs   int64            `json:"wall_us"`
	Stages   []StageShare     `json:"stages"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

// TelemetryOverhead is the measured cost of leaving the fabric on:
// medians of warm repair-campaign service times with telemetry enabled
// and disabled (service.Config.NoTelemetry), across every design.
type TelemetryOverhead struct {
	Repeats     int     `json:"repeats"`
	EnabledMs   float64 `json:"enabled_warm_median_ms"`
	DisabledMs  float64 `json:"disabled_warm_median_ms"`
	OverheadPct float64 `json:"overhead_pct"`
}

// StageBenchReport is what -json-stages serializes to BENCH_stages.json.
type StageBenchReport struct {
	Words    int               `json:"words"`
	Cycles   int               `json:"cycles"`
	Rows     []StageBenchRow   `json:"rows"`
	Overhead TelemetryOverhead `json:"overhead"`
}

// stageSpec is the repair campaign the benchmark runs per design.
func stageSpec(design string, faultSeed int64, cfg Config, words, cycles int) service.Spec {
	return service.Spec{
		Design: design, Kind: service.KindRepair, FaultSeed: faultSeed,
		Seed: cfg.Seed, PlaceEffort: cfg.PlaceEffort, TileFrac: 0.25,
		Words: words, Cycles: cycles,
	}
}

// runStageCampaign submits one campaign and returns its result + trace.
func runStageCampaign(svc *service.Service, sp service.Spec) (*service.Result, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	id, err := svc.Submit(sp)
	if err != nil {
		return nil, err
	}
	return svc.Wait(ctx, id)
}

// iqMean is the interquartile mean: the average of the middle half of
// the sample, immune to both tails (GC pauses above, lucky cache-hot
// runs below).
func iqMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	lo, hi := len(sorted)/4, len(sorted)-len(sorted)/4
	return mean(sorted[lo:hi])
}

// shares flattens a StageTrace into exclusive-time percentages.
func shares(tr *obs.StageTrace) []StageShare {
	var total int64
	for _, s := range tr.Stages {
		total += s.ExclUs
	}
	out := make([]StageShare, 0, len(tr.Stages))
	for _, s := range tr.Stages {
		sh := StageShare{Stage: s.Stage, DurUs: s.DurUs, ExclUs: s.ExclUs, Count: s.Count}
		if total > 0 {
			sh.SharePct = 100 * float64(s.ExclUs) / float64(total)
		}
		out = append(out, sh)
	}
	return out
}

// TelemetryBench runs the per-stage share measurement and the
// instrumentation-overhead comparison. repeats is the warm campaigns per
// design and arm (default 32).
func TelemetryBench(cfg Config, words, cycles, repeats int) (*StageBenchReport, error) {
	cfg = cfg.withDefaults()
	designs := cfg.Designs
	if len(designs) == 0 {
		designs = []string{"9sym", "c880", "styr"}
	}
	if words <= 0 {
		words = 4
	}
	if cycles <= 0 {
		cycles = 2
	}
	if repeats <= 0 {
		repeats = 32
	}
	rep := &StageBenchReport{Words: words, Cycles: cycles}
	rep.Overhead.Repeats = repeats

	// Per-stage shares: one fresh single-worker service per design so the
	// cold campaign's trace covers the full pipeline, synth included. The
	// first fault seed whose error is excited provides the row.
	for _, d := range designs {
		svc := service.New(service.Config{Workers: 1})
		row := StageBenchRow{Design: d}
		for fs := int64(1); fs <= 4; fs++ {
			res, err := runStageCampaign(svc, stageSpec(d, fs, cfg, words, cycles))
			if err != nil {
				svc.Close()
				return nil, fmt.Errorf("experiments: stage bench %s/%d: %w", d, fs, err)
			}
			if res.Trace == nil {
				svc.Close()
				return nil, fmt.Errorf("experiments: stage bench %s/%d: no trace", d, fs)
			}
			if row.Stages == nil || res.Detected {
				row.Detected = res.Detected
				row.WallUs = res.Trace.WallUs
				row.Stages = shares(res.Trace)
				row.Counters = res.Trace.Counters
			}
			if res.Detected {
				break
			}
		}
		svc.Close()
		rep.Rows = append(rep.Rows, row)
	}

	// Overhead: warm repeated repair campaigns, telemetry on vs off.
	// Both arms stay alive and alternate campaign by campaign, so clock
	// drift and background load bias them equally; the first (cold) run
	// per design and arm pays the artifact builds and is discarded.
	svcOn := service.New(service.Config{Workers: 1})
	svcOff := service.New(service.Config{Workers: 1, NoTelemetry: true})
	defer svcOn.Close()
	defer svcOff.Close()
	var enabled, disabled []float64
	var ratios []float64
	for _, d := range designs {
		sp := stageSpec(d, 1, cfg, words, cycles)
		var dEnabled, dDisabled []float64
		for _, svc := range []*service.Service{svcOn, svcOff} {
			if _, err := runStageCampaign(svc, sp); err != nil {
				return nil, fmt.Errorf("experiments: overhead warm-up %s: %w", d, err)
			}
		}
		for i := 0; i < repeats; i++ {
			// Strict single-campaign alternation, swapping which arm goes
			// first each iteration: background-load drift and within-pair
			// position bias (cache residency, turbo ramp) both cancel.
			first, second := svcOn, svcOff
			if i%2 == 1 {
				first, second = svcOff, svcOn
			}
			res1, err := runStageCampaign(first, sp)
			if err != nil {
				return nil, fmt.Errorf("experiments: overhead arm %s: %w", d, err)
			}
			res2, err := runStageCampaign(second, sp)
			if err != nil {
				return nil, fmt.Errorf("experiments: overhead arm %s: %w", d, err)
			}
			on, off := res1.WallMs, res2.WallMs
			if i%2 == 1 {
				on, off = off, on
			}
			dEnabled = append(dEnabled, on)
			dDisabled = append(dDisabled, off)
		}
		enabled = append(enabled, dEnabled...)
		disabled = append(disabled, dDisabled...)
		// One overhead sample per design: the ratio of the arms'
		// interquartile means, so a handful of GC pauses or scheduler
		// stalls on either side cannot drag the estimate.
		if lo := iqMean(dDisabled); lo > 0 {
			ratios = append(ratios, iqMean(dEnabled)/lo)
		}
	}
	// Medians across every design's campaign walls, reported for context
	// — they mix whatever background load the run happened to see.
	rep.Overhead.EnabledMs = median(enabled)
	rep.Overhead.DisabledMs = median(disabled)
	if len(ratios) > 0 {
		rep.Overhead.OverheadPct = 100 * (mean(ratios) - 1)
	}
	return rep, nil
}

// StageCSV flattens stage traces into a CSV table, one row per stage per
// campaign, for spreadsheet-side analysis of NDJSON trace logs.
func StageCSV(traces []*obs.StageTrace) string {
	var b strings.Builder
	b.WriteString("campaign,design,kind,stage,start_us,dur_us,excl_us,count\n")
	for _, tr := range traces {
		if tr == nil {
			continue
		}
		for _, s := range tr.Stages {
			fmt.Fprintf(&b, "%s,%s,%s,%s,%d,%d,%d,%d\n",
				tr.Campaign, tr.Design, tr.Kind, s.Stage, s.StartUs, s.DurUs, s.ExclUs, s.Count)
		}
	}
	return b.String()
}

// FormatStages renders the report as a text table.
func FormatStages(r *StageBenchReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Per-stage wall-time shares (cold repair campaign, %d words x %d cycles)\n",
		r.Words, r.Cycles)
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s: wall %.1fms (detected=%v)\n",
			row.Design, float64(row.WallUs)/1000, row.Detected)
		for _, s := range row.Stages {
			fmt.Fprintf(&b, "  %-18s %8.2fms %5.1f%%  x%d\n",
				s.Stage, float64(s.ExclUs)/1000, s.SharePct, s.Count)
		}
	}
	fmt.Fprintf(&b, "instrumentation overhead: warm repair median %.2fms enabled vs %.2fms disabled — %+.1f%% (%d repeats/design)\n",
		r.Overhead.EnabledMs, r.Overhead.DisabledMs, r.Overhead.OverheadPct, r.Overhead.Repeats)
	return b.String()
}
