package experiments

import (
	"fmt"
	"strings"
	"time"

	"fpgadbg/internal/netlist"
	"fpgadbg/internal/sim"
	"fpgadbg/internal/testgen"
)

// SimBenchRow is one design's simulator micro-benchmark: ns per
// pattern-cycle (64 parallel patterns per word) through the compiled
// trace path and through the legacy map-driven Step interpreter, plus
// their ratio. cmd/benchrepro -json serializes these rows to
// BENCH_sim.json so the performance trajectory is tracked across PRs.
type SimBenchRow struct {
	Design  string  `json:"design"`
	LUTs    int     `json:"luts"`
	DFFs    int     `json:"dffs"`
	Cycles  int     `json:"cycles"`
	TraceNs float64 `json:"trace_ns_per_pattern_cycle"`
	StepNs  float64 `json:"step_ns_per_pattern_cycle"`
	Speedup float64 `json:"speedup"`
}

// SimBench measures the emulation substrate on the tech-mapped designs.
// Unlike the other experiments it runs designs serially — concurrent
// timing would skew the numbers it exists to record.
func SimBench(cfg Config, cycles int) ([]SimBenchRow, error) {
	cfg = cfg.withDefaults()
	if cycles < 1 {
		cycles = 256
	}
	var rows []SimBenchRow
	for _, d := range cfg.catalog() {
		mapped, err := Mapped(d)
		if err != nil {
			return nil, err
		}
		m, err := sim.Compile(mapped)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", d.Name, err)
		}
		pis := mapped.SortedPINames()
		if err := m.BindNames(pis); err != nil {
			return nil, err
		}
		stim := testgen.RandomBlocks(len(pis), cycles, cfg.Seed)
		var tr sim.Trace
		m.RunTraceInto(&tr, stim) // warm buffers
		traceNs := timeNs(func() { m.RunTraceInto(&tr, stim) })

		ref, err := sim.CompileReference(mapped)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", d.Name, err)
		}
		maps := testgen.Random(pis, cycles, cfg.Seed)
		step := func() {
			ref.Reset()
			for _, in := range maps {
				if _, err := ref.Step(in); err != nil {
					panic(err) // inputs come from the design's own PI list
				}
			}
		}
		step() // warm
		stepNs := timeNs(step)

		luts, dffs := 0, 0
		for ci := range mapped.Cells {
			c := &mapped.Cells[ci]
			if c.Dead {
				continue
			}
			if c.Kind == netlist.KindLUT {
				luts++
			} else {
				dffs++
			}
		}
		patCycles := float64(cycles * 64)
		rows = append(rows, SimBenchRow{
			Design: d.Name, LUTs: luts, DFFs: dffs, Cycles: cycles,
			TraceNs: traceNs / patCycles,
			StepNs:  stepNs / patCycles,
			Speedup: stepNs / traceNs,
		})
	}
	return rows, nil
}

// timeNs runs f repeatedly for at least 50ms (and at least 3 times) and
// returns the mean ns per call.
func timeNs(f func()) float64 {
	const target = 50 * time.Millisecond
	n := 0
	start := time.Now()
	for {
		f()
		n++
		if el := time.Since(start); el >= target && n >= 3 {
			return float64(el.Nanoseconds()) / float64(n)
		}
	}
}

// FormatSimBench renders the micro-benchmark table.
func FormatSimBench(rows []SimBenchRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Simulator micro-benchmark (ns per pattern-cycle)")
	fmt.Fprintf(&b, "%-11s %6s %6s %10s %10s %9s\n", "design", "LUTs", "DFFs", "trace", "step", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %6d %6d %10.2f %10.2f %8.1fx\n",
			r.Design, r.LUTs, r.DFFs, r.TraceNs, r.StepNs, r.Speedup)
	}
	return b.String()
}
