package experiments

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"fpgadbg/internal/netlist"
	"fpgadbg/internal/sim"
	"fpgadbg/internal/testgen"
)

// SimBenchRow is one (design, lane width) point of the simulator
// micro-benchmark: ns per pattern-cycle (64·width parallel patterns per
// evaluation) through the compiled trace path and through the legacy
// map-driven Step interpreter, plus their ratio. cmd/benchrepro -json
// serializes these rows to BENCH_sim.json so the performance trajectory
// is tracked across PRs. Rows with LaneWidth 0 (from older files) are
// width-1 rows.
type SimBenchRow struct {
	Design       string  `json:"design"`
	LUTs         int     `json:"luts"`
	DFFs         int     `json:"dffs"`
	Cycles       int     `json:"cycles"`
	LaneWidth    int     `json:"lane_width"`
	FusedKernels int     `json:"fused_kernels"`
	Workers      int     `json:"workers,omitempty"`
	TraceNs      float64 `json:"trace_ns_per_pattern_cycle"`
	StepNs       float64 `json:"step_ns_per_pattern_cycle"`
	Speedup      float64 `json:"speedup"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
}

// SimBench measures the emulation substrate on the tech-mapped designs,
// one row per design per requested lane width (64·W lanes). workers > 1
// additionally enables level-parallel evaluation on machines whose
// levels are wide enough to split. Unlike the other experiments it runs
// designs serially — concurrent timing would skew the numbers it exists
// to record.
func SimBench(cfg Config, cycles int, widths []int, workers int) ([]SimBenchRow, error) {
	cfg = cfg.withDefaults()
	if cycles < 1 {
		cycles = 256
	}
	if len(widths) == 0 {
		widths = []int{1}
	}
	var rows []SimBenchRow
	for _, d := range cfg.catalog() {
		mapped, err := Mapped(d)
		if err != nil {
			return nil, err
		}
		pis := mapped.SortedPINames()

		ref, err := sim.CompileReference(mapped)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", d.Name, err)
		}
		maps := testgen.Random(pis, cycles, cfg.Seed)
		step := func() {
			ref.Reset()
			for _, in := range maps {
				if _, err := ref.Step(in); err != nil {
					panic(err) // inputs come from the design's own PI list
				}
			}
		}
		step() // warm
		stepNs := timeNs(step)

		luts, dffs := 0, 0
		for ci := range mapped.Cells {
			c := &mapped.Cells[ci]
			if c.Dead {
				continue
			}
			if c.Kind == netlist.KindLUT {
				luts++
			} else {
				dffs++
			}
		}

		for _, W := range widths {
			m, err := sim.CompileWidth(mapped, W)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s: %w", d.Name, err)
			}
			if err := m.BindNames(pis); err != nil {
				return nil, err
			}
			if workers > 1 {
				m.SetWorkers(workers)
			}
			stim := testgen.RandomBlocks(len(pis)*W, cycles, cfg.Seed)
			var tr sim.Trace
			m.RunTraceInto(&tr, stim) // warm buffers
			traceNs, allocs := timeNsAllocs(func() { m.RunTraceInto(&tr, stim) })
			m.SetWorkers(0)

			patCycles := float64(cycles * 64 * W)
			rows = append(rows, SimBenchRow{
				Design: d.Name, LUTs: luts, DFFs: dffs, Cycles: cycles,
				LaneWidth:    W,
				FusedKernels: m.FusedKernels(),
				Workers:      workers,
				TraceNs:      traceNs / patCycles,
				StepNs:       stepNs / float64(cycles*64),
				Speedup:      stepNs / float64(cycles*64) / (traceNs / patCycles),
				AllocsPerOp:  allocs,
			})
		}
	}
	return rows, nil
}

// timeNs runs f over several measurement epochs and returns the best
// epoch's mean ns per call.
func timeNs(f func()) float64 {
	ns, _ := timeNsAllocs(f)
	return ns
}

// timeNsAllocs times f over several independent epochs (each at least
// 20ms and two calls) and returns the minimum per-call time across
// epochs, plus the mean heap allocations per call over all of them. The
// minimum is the robust estimator on a shared machine: competing load
// can only ever make an epoch slower, never faster.
func timeNsAllocs(f func()) (float64, float64) {
	const (
		epochs = 5
		target = 20 * time.Millisecond
	)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	calls := 0
	best := math.Inf(1)
	for e := 0; e < epochs; e++ {
		n := 0
		start := time.Now()
		var el time.Duration
		for {
			f()
			n++
			if el = time.Since(start); el >= target && n >= 2 {
				break
			}
		}
		calls += n
		if per := float64(el.Nanoseconds()) / float64(n); per < best {
			best = per
		}
	}
	runtime.ReadMemStats(&after)
	return best, float64(after.Mallocs-before.Mallocs) / float64(calls)
}

// FormatSimBench renders the micro-benchmark table.
func FormatSimBench(rows []SimBenchRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Simulator micro-benchmark (ns per pattern-cycle)")
	fmt.Fprintf(&b, "%-11s %6s %6s %6s %6s %10s %10s %9s %8s\n",
		"design", "LUTs", "DFFs", "lanes", "fused", "trace", "step", "speedup", "allocs")
	for _, r := range rows {
		w := r.LaneWidth
		if w == 0 {
			w = 1
		}
		fmt.Fprintf(&b, "%-11s %6d %6d %6d %6d %10.2f %10.2f %8.1fx %8.1f\n",
			r.Design, r.LUTs, r.DFFs, 64*w, r.FusedKernels, r.TraceNs, r.StepNs, r.Speedup, r.AllocsPerOp)
	}
	return b.String()
}
