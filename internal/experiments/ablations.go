package experiments

import (
	"fmt"
	"strings"

	"fpgadbg/internal/bench"
	"fpgadbg/internal/core"
)

// OverheadSweepRow measures how the resource-slack knob changes Figure 3
// behaviour: more slack means fewer tiles recruited for the same insertion
// (the paper's §3.2 tradeoff: "area overhead can be as little as 10%...").
type OverheadSweepRow struct {
	Design   string
	Overhead float64
	// Affected50 is the % of tiles affected by a 50-CLB insertion.
	Affected50 float64
	// MaxLogic1 is the Figure-4 y-intercept (one test point, clustered
	// variant: the roomiest tile's slack).
	MaxLogic1 int
	// TotalSlack is the design's total free CLB sites.
	TotalSlack int
}

// OverheadSweep runs the 10/20/30% slack ablation.
func OverheadSweep(cfg Config) ([]OverheadSweepRow, error) {
	cfg = cfg.withDefaults()
	perDesign, err := forEachDesign(cfg, func(d bench.Info) ([]OverheadSweepRow, error) {
		var rows []OverheadSweepRow
		for _, ov := range []float64{0.10, 0.20, 0.30} {
			c := cfg
			c.Overhead = ov
			l, err := tiledLayout(d, c)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s @%.0f%%: %w", d.Name, ov*100, err)
			}
			total := 0
			for _, f := range l.TileFree() {
				total += f
			}
			row := OverheadSweepRow{Design: d.Name, Overhead: ov,
				MaxLogic1: l.MaxTestLogicClustered(1), TotalSlack: total}
			tiles, err := l.AffectedTiles(centralTile(l), 50)
			if err != nil {
				row.Affected50 = 100
			} else {
				row.Affected50 = 100 * float64(len(tiles)) / float64(len(l.Tiles))
			}
			rows = append(rows, row)
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []OverheadSweepRow
	for _, rs := range perDesign {
		rows = append(rows, rs...)
	}
	return rows, nil
}

// FormatOverheadSweep renders the slack ablation.
func FormatOverheadSweep(rows []OverheadSweepRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Ablation: resource slack vs tile recruitment")
	fmt.Fprintf(&b, "%-11s %9s %14s %12s %11s\n", "design", "slack", "%tiles@50CLB", "max@1point", "total free")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %8.0f%% %13.1f%% %12d %11d\n", r.Design, r.Overhead*100, r.Affected50, r.MaxLogic1, r.TotalSlack)
	}
	return b.String()
}

// BoundaryRow compares uniform tile boundaries against the min-crossing
// sweep (the paper's "inter-tile interconnect is minimized").
type BoundaryRow struct {
	Design             string
	UniformCrossings   int
	OptimizedCrossings int
}

// BoundaryAblation measures inter-tile route crossings for both boundary
// modes.
func BoundaryAblation(cfg Config) ([]BoundaryRow, error) {
	cfg = cfg.withDefaults()
	return forEachDesign(cfg, func(d bench.Info) (BoundaryRow, error) {
		mapped, err := Mapped(d)
		if err != nil {
			return BoundaryRow{}, err
		}
		uni, err := core.BuildMapped(mapped.Clone(), core.Spec{
			Overhead: cfg.Overhead, TileFrac: 0.10, Seed: cfg.Seed,
			PlaceEffort: cfg.PlaceEffort, UniformBoundaries: true,
		})
		if err != nil {
			return BoundaryRow{}, err
		}
		opt, err := core.BuildMapped(mapped, core.Spec{
			Overhead: cfg.Overhead, TileFrac: 0.10, Seed: cfg.Seed,
			PlaceEffort: cfg.PlaceEffort,
		})
		if err != nil {
			return BoundaryRow{}, err
		}
		return BoundaryRow{
			Design:             d.Name,
			UniformCrossings:   interTileCrossings(uni),
			OptimizedCrossings: interTileCrossings(opt),
		}, nil
	})
}

// interTileCrossings counts routed edges linking different tiles.
func interTileCrossings(l *core.Layout) int {
	total := 0
	for _, rn := range l.Routes {
		for _, e := range rn.Route {
			a, b := l.Grid.EdgeEnds(e)
			if !l.Dev.IsCLB(a) || !l.Dev.IsCLB(b) {
				continue
			}
			if l.TileOf(a) != l.TileOf(b) {
				total++
			}
		}
	}
	return total
}

// FormatBoundaryAblation renders the boundary-drawing ablation.
func FormatBoundaryAblation(rows []BoundaryRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Ablation: tile boundary drawing (inter-tile route crossings)")
	fmt.Fprintf(&b, "%-11s %10s %10s\n", "design", "uniform", "min-cut")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %10d %10d\n", r.Design, r.UniformCrossings, r.OptimizedCrossings)
	}
	return b.String()
}
