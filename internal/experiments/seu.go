package experiments

// The SEU vulnerability campaign and the fault-scan throughput benchmark.
// Both run on the fault-parallel mutant engine (internal/faults.Scan):
// the exhaustive single-fault universe of each design — stuck-at-0/1 on
// every net, every single LUT-bit flip — is simulated 64 mutants at a
// time, one per simulator bit lane, against the golden trace. The
// campaign reports per-design detection coverage and latency (how many
// upsets random functional patterns expose, and how fast); the benchmark
// records the measured throughput advantage over the legacy serial
// clone-mutate-recompile path into BENCH_faults.json.

import (
	"fmt"
	"strings"
	"time"

	"fpgadbg/internal/bench"
	"fpgadbg/internal/debug"
	"fpgadbg/internal/faults"
	"fpgadbg/internal/sim"
	"fpgadbg/internal/testgen"
)

// LatencyBuckets is the number of power-of-two detection-latency
// histogram buckets: bucket k counts faults first detected at a cycle c
// with c+1 in [2^k, 2^(k+1)), and the last bucket absorbs the tail.
const LatencyBuckets = 10

// LatencyBucketLabel names histogram bucket k for tables and JSON docs.
func LatencyBucketLabel(k int) string {
	lo := 1 << uint(k)
	if k == LatencyBuckets-1 {
		return fmt.Sprintf("%d+", lo)
	}
	return fmt.Sprintf("%d-%d", lo, 2<<uint(k)-1)
}

// latencyBucket maps a first-detection cycle to its histogram bucket.
func latencyBucket(firstCycle int) int {
	b := 0
	for v := firstCycle + 1; v > 1 && b < LatencyBuckets-1; v >>= 1 {
		b++
	}
	return b
}

// SEURow summarizes one design's single-event-upset vulnerability under
// random functional patterns: of the exhaustive fault universe, how much
// does plain output comparison against the golden model expose, how
// quickly, and how much of it the fault dictionary could localize without
// probes.
type SEURow struct {
	Design string `json:"design"`
	// Faults is the universe size (2 stuck-ats per net + LUT truth-table
	// bits); Batches how many 64-lane groups it took.
	Faults  int `json:"faults"`
	Batches int `json:"batches"`
	// Detected / Coverage report overall detection; the per-class splits
	// separate wire upsets from configuration-bit upsets.
	Detected        int     `json:"detected"`
	Coverage        float64 `json:"coverage"`
	StuckAtCoverage float64 `json:"stuck_at_coverage"`
	LUTFlipCoverage float64 `json:"lut_flip_coverage"`
	// MeanLatencyCycles is the mean first-detection cycle (1-based) among
	// detected faults; LatencyHist buckets them by LatencyBucketLabel.
	MeanLatencyCycles float64             `json:"mean_latency_cycles"`
	LatencyHist       [LatencyBuckets]int `json:"latency_hist"`
	// Diagnosable is the fraction of detected faults whose PO-mismatch
	// signature class implicates at most debug.DefaultDictMaxSuspects
	// cells — i.e. the fault dictionary localizes them with zero probes.
	Diagnosable float64 `json:"diagnosable"`
	// FaultsPerSec is the fault-parallel engine's measured throughput for
	// this design (whole universe, wall clock).
	FaultsPerSec float64 `json:"faults_per_sec"`
}

// SEUCampaign fault-simulates the exhaustive universe of every design in
// 64-lane batches under patterns broadcast vectors held cycles clock
// cycles. Designs fan out over the worker pool; per-design results are
// deterministic.
func SEUCampaign(cfg Config, patterns, cycles int) ([]SEURow, error) {
	cfg = cfg.withDefaults()
	scfg := faults.ScanConfig{Patterns: patterns, Cycles: cycles, Seed: cfg.Seed}
	return forEachDesign(cfg, func(d bench.Info) (SEURow, error) {
		golden, err := Mapped(d)
		if err != nil {
			return SEURow{}, err
		}
		prog, err := sim.Compile(golden)
		if err != nil {
			return SEURow{}, fmt.Errorf("experiments: %s: %w", d.Name, err)
		}
		u := faults.Universe(golden)
		start := time.Now()
		results, err := faults.Scan(prog, u, scfg)
		if err != nil {
			return SEURow{}, fmt.Errorf("experiments: %s: %w", d.Name, err)
		}
		wall := time.Since(start)
		row := SEURow{Design: d.Name, Faults: len(u), Batches: (len(u) + 63) / 64}
		stuck, stuckDet, flips, flipDet := 0, 0, 0, 0
		latSum := 0
		classes := make(map[uint64]map[string]bool)
		for _, r := range results {
			if r.Fault.Kind == faults.LUTBitFlip {
				flips++
			} else {
				stuck++
			}
			if !r.Detected {
				continue
			}
			row.Detected++
			if r.Fault.Kind == faults.LUTBitFlip {
				flipDet++
			} else {
				stuckDet++
			}
			latSum += r.FirstCycle + 1
			row.LatencyHist[latencyBucket(r.FirstCycle)]++
			cells := classes[r.Signature]
			if cells == nil {
				cells = make(map[string]bool)
				classes[r.Signature] = cells
			}
			if name, ok := r.Fault.SuspectCell(golden); ok {
				cells[name] = true
			}
		}
		if row.Detected > 0 {
			row.Coverage = float64(row.Detected) / float64(len(u))
			row.MeanLatencyCycles = float64(latSum) / float64(row.Detected)
		}
		if stuck > 0 {
			row.StuckAtCoverage = float64(stuckDet) / float64(stuck)
		}
		if flips > 0 {
			row.LUTFlipCoverage = float64(flipDet) / float64(flips)
		}
		diagnosable := 0
		for _, r := range results {
			if !r.Detected {
				continue
			}
			if cells := classes[r.Signature]; len(cells) >= 1 && len(cells) <= debug.DefaultDictMaxSuspects {
				diagnosable++
			}
		}
		if row.Detected > 0 {
			row.Diagnosable = float64(diagnosable) / float64(row.Detected)
		}
		if s := wall.Seconds(); s > 0 {
			row.FaultsPerSec = float64(len(u)) / s
		}
		return row, nil
	})
}

// FormatSEU renders the campaign as a text table.
func FormatSEU(rows []SEURow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "SEU vulnerability campaign (exhaustive fault universe, 64-lane fault-parallel)")
	fmt.Fprintf(&b, "%-11s %8s %8s %8s %9s %9s %9s %8s %12s\n",
		"design", "faults", "detected", "coverage", "stuck-at", "lut-flip", "lat(cyc)", "diag", "faults/sec")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %8d %8d %7.1f%% %8.1f%% %8.1f%% %9.1f %7.1f%% %12.0f\n",
			r.Design, r.Faults, r.Detected, 100*r.Coverage, 100*r.StuckAtCoverage,
			100*r.LUTFlipCoverage, r.MeanLatencyCycles, 100*r.Diagnosable, r.FaultsPerSec)
	}
	return b.String()
}

// FaultBenchRow is one design's fault-scan throughput measurement:
// faults per second through the 64-lane fault-parallel engine versus the
// serial baseline (per fault: netlist clone, mutation, recompile, packed
// pattern-parallel replay — the shape the fault campaign had before the
// mutant engine). Both sides apply the same number of test patterns per
// fault. cmd/benchrepro -json-faults serializes these rows to
// BENCH_faults.json.
type FaultBenchRow struct {
	Design   string `json:"design"`
	Faults   int    `json:"faults"`
	Batches  int    `json:"batches"`
	Patterns int    `json:"patterns"`
	Cycles   int    `json:"cycles"`
	// SerialSampled is how many universe faults the (much slower) serial
	// side actually timed; its throughput is measured on that sample.
	SerialSampled        int     `json:"serial_sampled"`
	SerialFaultsPerSec   float64 `json:"serial_faults_per_sec"`
	ParallelFaultsPerSec float64 `json:"parallel_faults_per_sec"`
	Speedup              float64 `json:"speedup"`
	DetectedParallel     int     `json:"detected"`
}

// FaultScanBench measures fault-parallel vs serial throughput per design.
// Timing runs serially (concurrent timing would skew the numbers);
// serialCap bounds the faults the serial side replays (0 = 192).
func FaultScanBench(cfg Config, patterns, cycles, serialCap int) ([]FaultBenchRow, error) {
	cfg = cfg.withDefaults()
	if patterns < 1 {
		patterns = 64
	}
	if cycles < 1 {
		cycles = 2
	}
	if serialCap <= 0 {
		serialCap = 192
	}
	var rows []FaultBenchRow
	for _, d := range cfg.catalog() {
		golden, err := Mapped(d)
		if err != nil {
			return nil, err
		}
		prog, err := sim.Compile(golden)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", d.Name, err)
		}
		u := faults.Universe(golden)
		scfg := faults.ScanConfig{Patterns: patterns, Cycles: cycles, Seed: cfg.Seed}

		// Parallel: the whole universe, warmed once.
		if _, err := faults.Scan(prog, u[:min(len(u), 64)], scfg); err != nil {
			return nil, err
		}
		start := time.Now()
		results, err := faults.Scan(prog, u, scfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", d.Name, err)
		}
		parWall := time.Since(start)

		// Serial: a stride sample of the same universe through the legacy
		// clone + mutate + recompile + packed-replay path.
		sample := strideSample(u, serialCap)
		start = time.Now()
		if err := serialPackedScan(prog, sample, patterns, cycles, cfg.Seed); err != nil {
			return nil, fmt.Errorf("experiments: %s serial: %w", d.Name, err)
		}
		serWall := time.Since(start)

		row := FaultBenchRow{
			Design: d.Name, Faults: len(u), Batches: (len(u) + 63) / 64,
			Patterns: patterns, Cycles: cycles, SerialSampled: len(sample),
		}
		for _, r := range results {
			if r.Detected {
				row.DetectedParallel++
			}
		}
		if s := parWall.Seconds(); s > 0 {
			row.ParallelFaultsPerSec = float64(len(u)) / s
		}
		if s := serWall.Seconds(); s > 0 {
			row.SerialFaultsPerSec = float64(len(sample)) / s
		}
		if row.SerialFaultsPerSec > 0 {
			row.Speedup = row.ParallelFaultsPerSec / row.SerialFaultsPerSec
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// strideSample picks up to n evenly spaced faults, always including the
// first, so every kind and region of the universe is represented.
func strideSample(u []faults.Fault, n int) []faults.Fault {
	if len(u) <= n {
		return u
	}
	stride := len(u) / n
	out := make([]faults.Fault, 0, n)
	for i := 0; i < len(u) && len(out) < n; i += stride {
		out = append(out, u[i])
	}
	return out
}

// serialPackedScan is the legacy per-fault campaign shape: for every
// fault, clone the golden netlist, mutate it, recompile, and replay the
// same test patterns packed 64 per word (patterns/64 words held cycles
// cycles — the pattern-parallel idiom sim.Equivalent uses). Stuck-ats on
// source nets run as overrides on a fork, mirroring faults.SerialScan.
func serialPackedScan(prog *sim.Machine, fs []faults.Fault, patterns, cycles int, seed int64) error {
	golden := prog.Netlist()
	words := (patterns + 63) / 64
	stim := testgen.Repeat(testgen.RandomBlocks(len(prog.PIOrder()), words, seed), cycles)
	gt := prog.Fork().RunTrace(stim)
	sink := 0
	for _, f := range fs {
		mutant := golden.Clone()
		applied, err := f.Apply(mutant)
		if err != nil {
			return err
		}
		var tr *sim.Trace
		if applied {
			m2, err := sim.Compile(mutant)
			if err != nil {
				return err
			}
			tr = m2.RunTrace(stim)
		} else {
			m2 := prog.Fork()
			w := uint64(0)
			if f.Kind == faults.StuckAt1 {
				w = ^uint64(0)
			}
			if err := m2.SetOverride(f.Net, w); err != nil {
				return err
			}
			tr = m2.RunTrace(stim)
		}
		for c := 0; c < tr.Cycles; c++ {
			for po := 0; po < tr.NumPOs; po++ {
				if tr.Out(c, po) != gt.Out(c, po) {
					sink++
				}
			}
		}
	}
	benchSink = sink // defeat dead-code elimination
	return nil
}

// benchSink absorbs comparison results so the serial loop is not
// optimized away.
var benchSink int

// FormatFaultBench renders the throughput comparison.
func FormatFaultBench(rows []FaultBenchRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Fault-scan throughput: 64-lane fault-parallel vs serial clone+recompile")
	fmt.Fprintf(&b, "%-11s %8s %8s %10s %14s %14s %9s\n",
		"design", "faults", "batches", "serial(n)", "serial f/s", "parallel f/s", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %8d %8d %10d %14.0f %14.0f %8.1fx\n",
			r.Design, r.Faults, r.Batches, r.SerialSampled,
			r.SerialFaultsPerSec, r.ParallelFaultsPerSec, r.Speedup)
	}
	return b.String()
}
