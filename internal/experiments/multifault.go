package experiments

// The multi-fault campaign: one run per design covering the three fault
// models beyond single permanent stuck-ats. Fault pairs ride the lane
// engine one pair per lane and are diagnosed back through the syndrome
// composition dictionary (probe-free when a decoded candidate reproduces
// the exact observed signature in simulation); transient windowed SEUs
// report detection latency from the arming edge and how much the window
// masks; interconnect faults (route stuck-ats + bridges) report coverage.
// The pair scan is also timed against the serial differential path
// (clone + apply both faults + recompile per pair) — the lane-vs-serial
// speedup cmd/benchrepro -json-multifault records into
// BENCH_multifault.json.

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"fpgadbg/internal/debug"
	"fpgadbg/internal/faults"
	"fpgadbg/internal/sim"
)

// MultiFaultRow is one design's multi-fault campaign outcome.
type MultiFaultRow struct {
	Design string `json:"design"`

	// Fault pairs: the sampled suspect-ranked pair universe, how many
	// pairs any output exposed, how many of those the composition
	// dictionary diagnosed as a pair with zero probes (confirmed in
	// simulation by exact signature), and how many collapsed onto a
	// single-fault signature (one fault masking its partner — a sound
	// probe-free verdict naming the dominant fault's equivalence class).
	// PairDiagRate is the probe-free resolution rate:
	// (diagnosed + masked) / detected — the share of detected pairs for
	// which the dictionary returned a simulation-exact verdict without a
	// single probe round.
	Pairs          int     `json:"pairs"`
	PairsDetected  int     `json:"pairs_detected"`
	PairsDiagnosed int     `json:"pairs_diagnosed"`
	PairDiagRate   float64 `json:"pair_diag_rate"`
	PairsMasked    int     `json:"pairs_masked"`
	MaskingRate    float64 `json:"masking_rate"`

	// Transient SEUs: a stride sample of the single-fault universe armed
	// only for a short cycle window. Latency percentiles are measured
	// from the arming edge among detected upsets; MaskedFraction is the
	// share of upsets whose permanent arm is detected but whose windowed
	// arm never reaches an output.
	SEUFaults      int     `json:"seu_faults"`
	SEUDetected    int     `json:"seu_detected"`
	SEULatencyP50  float64 `json:"seu_latency_p50"`
	SEULatencyP99  float64 `json:"seu_latency_p99"`
	MaskedFraction float64 `json:"masked_fraction"`

	// Interconnect: route stuck-ats on every LUT pin plus sampled
	// bridges, and their combined detection coverage.
	RouteFaults          int     `json:"route_faults"`
	BridgeFaults         int     `json:"bridge_faults"`
	InterconnectCoverage float64 `json:"interconnect_coverage"`

	// Lane-vs-serial pair-scan throughput: pairs per second through the
	// lane-packed engine (whole universe) versus the serial differential
	// path (clone + apply + recompile per pair, on SerialSampled pairs).
	SerialSampled     int     `json:"serial_sampled"`
	SerialPairsPerSec float64 `json:"serial_pairs_per_sec"`
	LanePairsPerSec   float64 `json:"lane_pairs_per_sec"`
	Speedup           float64 `json:"speedup"`
}

// MultiFaultCampaign runs the three-model campaign on every catalog
// design. Designs run serially — the speedup column is a timing
// measurement, and concurrent runs would skew it. maxPairs bounds the
// sampled pair universe (0 = 256); serialCap bounds the pairs the serial
// baseline replays (0 = 96).
func MultiFaultCampaign(cfg Config, patterns, cycles, maxPairs, serialCap int) ([]MultiFaultRow, error) {
	cfg = cfg.withDefaults()
	if patterns < 1 {
		patterns = 64
	}
	if cycles < 1 {
		cycles = 2
	}
	if serialCap <= 0 {
		serialCap = 96
	}
	scfg := faults.ScanConfig{Patterns: patterns, Cycles: cycles, Seed: cfg.Seed}
	var rows []MultiFaultRow
	for _, d := range cfg.catalog() {
		golden, err := Mapped(d)
		if err != nil {
			return nil, err
		}
		prog, err := sim.Compile(golden)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", d.Name, err)
		}
		row := MultiFaultRow{Design: d.Name}
		u := faults.Universe(golden)

		// Fault pairs: dictionary, sampled universe, lane scan, diagnosis.
		dict, err := debug.BuildSyndromeDict(prog, nil, scfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", d.Name, err)
		}
		pu := faults.PairUniverse(golden, u, faults.PairConfig{
			MaxPairs: maxPairs, Seed: cfg.Seed, Singles: dict.Singles(),
		})
		row.Pairs = len(pu)
		if _, err := faults.PairScan(prog, pu[:min(len(pu), 8)], scfg); err != nil { // warm
			return nil, err
		}
		start := time.Now()
		prs, err := faults.PairScan(prog, pu, scfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", d.Name, err)
		}
		laneWall := time.Since(start)
		for _, r := range prs {
			if !r.Detected {
				continue
			}
			row.PairsDetected++
			m, err := dict.Diagnose(prog, r.Syndrome)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s: %w", d.Name, err)
			}
			switch {
			case m.Class == debug.ClassPair && m.Confirmed:
				row.PairsDiagnosed++
			case m.Class == debug.ClassSingle && m.MaybeMasked:
				row.PairsMasked++
			}
		}
		if row.PairsDetected > 0 {
			row.PairDiagRate = float64(row.PairsDiagnosed+row.PairsMasked) / float64(row.PairsDetected)
		}
		if row.Pairs > 0 {
			row.MaskingRate = float64(row.PairsMasked) / float64(row.Pairs)
		}

		// Serial baseline on a stride sample of the same pairs.
		sample := stridePairSample(pu, serialCap)
		row.SerialSampled = len(sample)
		start = time.Now()
		if _, err := faults.SerialPairScan(prog, sample, scfg); err != nil {
			return nil, fmt.Errorf("experiments: %s serial: %w", d.Name, err)
		}
		serWall := time.Since(start)
		if s := laneWall.Seconds(); s > 0 {
			row.LanePairsPerSec = float64(len(pu)) / s
		}
		if s := serWall.Seconds(); s > 0 {
			row.SerialPairsPerSec = float64(len(sample)) / s
		}
		if row.SerialPairsPerSec > 0 {
			row.Speedup = row.LanePairsPerSec / row.SerialPairsPerSec
		}

		// Transient SEUs: windowed + permanent arms of a stride sample.
		cyclesTotal := patterns * cycles
		wu := faults.WindowUniverse(u, cyclesTotal, 2*cycles, 512, cfg.Seed)
		perm := make([]faults.Fault, len(wu))
		for i, f := range wu {
			f.From, f.To = 0, 0
			perm[i] = f
		}
		wres, err := faults.Scan(prog, wu, scfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", d.Name, err)
		}
		pres, err := faults.Scan(prog, perm, scfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", d.Name, err)
		}
		row.SEUFaults = len(wu)
		var lat []float64
		masked, permDet := 0, 0
		for i, r := range wres {
			if pres[i].Detected {
				permDet++
				if !r.Detected {
					masked++
				}
			}
			if r.Detected {
				row.SEUDetected++
				lat = append(lat, float64(r.FirstCycle-int(wu[i].From)+1))
			}
		}
		row.SEULatencyP50, row.SEULatencyP99 = latencyPercentiles(lat)
		if permDet > 0 {
			row.MaskedFraction = float64(masked) / float64(permDet)
		}

		// Interconnect faults.
		iu, err := faults.InterconnectUniverse(golden, faults.InterconnectConfig{Seed: cfg.Seed})
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", d.Name, err)
		}
		for _, f := range iu {
			if f.Kind == faults.BridgeAND || f.Kind == faults.BridgeOR {
				row.BridgeFaults++
			} else {
				row.RouteFaults++
			}
		}
		ires, err := faults.Scan(prog, iu, scfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", d.Name, err)
		}
		idet := 0
		for _, r := range ires {
			if r.Detected {
				idet++
			}
		}
		if len(iu) > 0 {
			row.InterconnectCoverage = float64(idet) / float64(len(iu))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// stridePairSample picks up to n evenly spaced pairs, always including
// the first.
func stridePairSample(ps []faults.Pair, n int) []faults.Pair {
	if len(ps) <= n {
		return ps
	}
	stride := len(ps) / n
	out := make([]faults.Pair, 0, n)
	for i := 0; i < len(ps) && len(out) < n; i += stride {
		out = append(out, ps[i])
	}
	return out
}

// latencyPercentiles returns the p50 and p99 of xs (0, 0 when empty).
func latencyPercentiles(xs []float64) (p50, p99 float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	sort.Float64s(xs)
	at := func(q float64) float64 { return xs[int(q*float64(len(xs)-1))] }
	return at(0.50), at(0.99)
}

// FormatMultiFault renders the campaign as a text table.
func FormatMultiFault(rows []MultiFaultRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Multi-fault campaign: pairs (lane-packed + syndrome composition), windowed SEUs, interconnect")
	fmt.Fprintf(&b, "%-11s %6s %6s %6s %7s %7s %8s %8s %7s %7s %8s %8s\n",
		"design", "pairs", "det", "diag", "res%", "mask%", "seu-p50", "seu-p99", "seumsk%", "ic-cov%", "ser-p/s", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %6d %6d %6d %6.1f%% %6.1f%% %8.0f %8.0f %6.1f%% %6.1f%% %8.0f %7.1fx\n",
			r.Design, r.Pairs, r.PairsDetected, r.PairsDiagnosed, 100*r.PairDiagRate,
			100*r.MaskingRate, r.SEULatencyP50, r.SEULatencyP99, 100*r.MaskedFraction,
			100*r.InterconnectCoverage, r.SerialPairsPerSec, r.Speedup)
	}
	return b.String()
}
