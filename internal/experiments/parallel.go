package experiments

import (
	"runtime"
	"sync"

	"fpgadbg/internal/bench"
)

// forEachDesign runs f over the designs on a worker pool of cfg.Workers
// goroutines (default GOMAXPROCS) and returns the per-design results in
// catalog order. Designs are independent — separate netlists, layouts and
// seeds — so fan-out changes wall time, not results. The first error
// cancels nothing (siblings finish) but wins the return.
func forEachDesign[T any](cfg Config, f func(d bench.Info) (T, error)) ([]T, error) {
	designs := cfg.catalog()
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(designs) {
		workers = len(designs)
	}
	out := make([]T, len(designs))
	errs := make([]error, len(designs))
	if workers <= 1 {
		for i, d := range designs {
			out[i], errs[i] = f(d)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					out[i], errs[i] = f(designs[i])
				}
			}()
		}
		for i := range designs {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
