package experiments

import "testing"

// A miniature end-to-end run of the store benchmark: tiny journal, the
// default two-design mix. Guards the report's structural invariants —
// digest-stable resume, parity across store backends, a fully populated
// shard split.
func TestStoreBenchSmall(t *testing.T) {
	cfg := Config{PlaceEffort: 0.3, Seed: 1, Workers: 2}
	rep, err := StoreBench(cfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SyncAppend.RecsPerSec <= 0 || rep.NoSyncAppend.RecsPerSec <= 0 {
		t.Fatalf("append throughput not measured: %+v", rep)
	}
	if len(rep.Recovery) != 3 || rep.Recovery[2].Records != 64 {
		t.Fatalf("recovery curve = %+v", rep.Recovery)
	}
	if !rep.ResumeDigestsOK {
		t.Fatal("resumed campaigns diverged from pre-restart digests")
	}
	if rep.ResumeSpillHits == 0 {
		t.Fatal("warm resume never hit the netlist spill")
	}
	if !rep.MemDiskParity {
		t.Fatal("digest differs across mem/disk/no-store backends")
	}
	if rep.Replicas != 2 || rep.Routed[0]+rep.Routed[1] != int64(4*rep.ResumeCampaigns) {
		t.Fatalf("shard split = %+v", rep)
	}
	if rep.Routed[0] == 0 || rep.Routed[1] == 0 {
		t.Fatalf("default design mix left a replica idle: routed %v", rep.Routed)
	}
	if FormatStoreBench(rep) == "" {
		t.Fatal("empty rendering")
	}
}
