package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"fpgadbg/internal/bench"
	"fpgadbg/internal/core"
	"fpgadbg/internal/device"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/synth"
	"fpgadbg/internal/timing"
)

// Config tunes the reproduction runs.
type Config struct {
	// Designs filters the benchmark set (nil = all nine).
	Designs []string
	// PlaceEffort scales annealing work (1.0 = full; the default 0.5
	// reproduces shapes in minutes).
	PlaceEffort float64
	// Overhead is the tiling resource slack (paper: ~0.20).
	Overhead float64
	Seed     int64
	// Workers caps the parallel fan-out across independent designs and
	// fault campaigns (0 = GOMAXPROCS). Results are deterministic and
	// order-preserving regardless of the worker count.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.PlaceEffort == 0 {
		c.PlaceEffort = 0.5
	}
	if c.Overhead == 0 {
		c.Overhead = 0.20
	}
	return c
}

func (c Config) catalog() []bench.Info {
	all := bench.Catalog()
	if len(c.Designs) == 0 {
		return all
	}
	var out []bench.Info
	for _, want := range c.Designs {
		for _, d := range all {
			if d.Name == want {
				out = append(out, d)
			}
		}
	}
	return out
}

// mappedCache avoids re-mapping a benchmark for every experiment; the
// mutex makes it safe under the parallel design fan-out.
var (
	mappedMu    sync.Mutex
	mappedCache = map[string]*netlist.Netlist{}
)

// Mapped returns the tech-mapped form of a benchmark (cached).
func Mapped(d bench.Info) (*netlist.Netlist, error) {
	mappedMu.Lock()
	m, ok := mappedCache[d.Name]
	mappedMu.Unlock()
	if ok {
		return m.Clone(), nil
	}
	mapped, err := synth.TechMap(d.Build())
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", d.Name, err)
	}
	mappedMu.Lock()
	mappedCache[d.Name] = mapped
	mappedMu.Unlock()
	return mapped.Clone(), nil
}

// ---------------------------------------------------------------- Table 1

// Table1Row is one line of "Tiled Physical Layout Statistics".
type Table1Row struct {
	Design         string
	CLBs           int
	AreaOverhead   float64
	TimingOverhead float64
	// Paper-reported values for side-by-side comparison.
	PaperCLBs           int
	PaperAreaOverhead   float64
	PaperTimingOverhead float64
}

var paperTable1 = map[string][2]float64{
	"9sym": {0.217, -0.045}, "styr": {0.210, 0.074}, "sand": {0.220, 0.129},
	"c499": {0.223, 0.000}, "planet1": {0.211, 0.137}, "c880": {0.227, -0.055},
	"s9234": {0.205, -0.014}, "MIPS R2000": {0.190, 0.047}, "DES": {0.200, 0.036},
}

// Table1 reproduces Table 1: per design, the packed CLB count, the area
// overhead introduced for tiling slack, and the timing overhead of the
// tiled layout versus an untiled (minimal-slack) layout of the same
// design.
func Table1(cfg Config) ([]Table1Row, error) {
	cfg = cfg.withDefaults()
	return forEachDesign(cfg, func(d bench.Info) (Table1Row, error) {
		mapped, err := Mapped(d)
		if err != nil {
			return Table1Row{}, err
		}
		// Untiled baseline: tightest device that still places and routes.
		base, err := core.BuildMapped(mapped.Clone(), core.Spec{
			Overhead: 0.02, TileFrac: 1.0, Seed: cfg.Seed, PlaceEffort: cfg.PlaceEffort,
		})
		if err != nil {
			return Table1Row{}, fmt.Errorf("experiments: %s untiled: %w", d.Name, err)
		}
		tiled, err := core.BuildMapped(mapped, core.Spec{
			Overhead: cfg.Overhead, TileFrac: 0.10, Seed: cfg.Seed, PlaceEffort: cfg.PlaceEffort,
		})
		if err != nil {
			return Table1Row{}, fmt.Errorf("experiments: %s tiled: %w", d.Name, err)
		}
		tBase, err := analyzeTiming(base)
		if err != nil {
			return Table1Row{}, err
		}
		tTiled, err := analyzeTiming(tiled)
		if err != nil {
			return Table1Row{}, err
		}
		paper := paperTable1[d.Name]
		return Table1Row{
			Design:         d.Name,
			CLBs:           tiled.NumCLBs(),
			AreaOverhead:   float64(tiled.Dev.NumCLBSites())/float64(tiled.NumCLBs()) - 1,
			TimingOverhead: timing.Overhead(tBase, tTiled),
			PaperCLBs:      d.PaperCLBs, PaperAreaOverhead: paper[0], PaperTimingOverhead: paper[1],
		}, nil
	})
}

// analyzeTiming runs STA over a layout.
func analyzeTiming(l *core.Layout) (timing.Report, error) {
	cellPos := make(map[netlist.CellID]device.XY)
	for ci := range l.NL.Cells {
		if l.NL.Cells[ci].Dead {
			continue
		}
		if clb, ok := l.Packed.CellCLB[netlist.CellID(ci)]; ok {
			cellPos[netlist.CellID(ci)] = l.CLBLoc[clb]
		}
	}
	netLen := make(map[netlist.NetID]int, len(l.Routes))
	for net, rn := range l.Routes {
		netLen[net] = rn.RouteLen()
	}
	return timing.Analyze(timing.Input{
		NL: l.NL, CellPos: cellPos, PadPos: l.PadLoc, NetLen: netLen,
	}, timing.DefaultModel())
}

// FormatTable1 renders rows like the paper's Table 1 with measured and
// paper values side by side.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1. Tiled Physical Layout Statistics (measured | paper)\n")
	fmt.Fprintf(&b, "%-11s %18s %21s %21s\n", "design", "# CLBs", "area overhead", "timing overhead")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %8d | %6d %10.3f | %6.3f %10.3f | %6.3f\n",
			r.Design, r.CLBs, r.PaperCLBs, r.AreaOverhead, r.PaperAreaOverhead,
			r.TimingOverhead, r.PaperTimingOverhead)
	}
	return b.String()
}

// ---------------------------------------------------------------- Fig 3/4

// FigXAxis matches the paper's x-axis samples: 1, 10, 19, ... 100.
func FigXAxis() []int {
	var xs []int
	for x := 1; x <= 100; x += 9 {
		xs = append(xs, x)
	}
	return xs
}

// Series is one curve of a figure.
type Series struct {
	Design string
	X      []int
	Y      []float64
}

// tiledLayout builds the standard experiment layout for a design: 20%
// overhead, tiles ≈ one tenth of the design (the paper's s9234 example
// uses ten tiles).
func tiledLayout(d bench.Info, cfg Config) (*core.Layout, error) {
	mapped, err := Mapped(d)
	if err != nil {
		return nil, err
	}
	return core.BuildMapped(mapped, core.Spec{
		Overhead: cfg.Overhead, TileFrac: 0.10, Seed: cfg.Seed, PlaceEffort: cfg.PlaceEffort,
	})
}

// Figure3 reproduces "Number of Tiles Affected by Logic Introduction":
// the percentage of tiles affected as the introduced logic grows from 1
// to 100 CLBs, with neighbor recruitment once the seed tile's slack is
// exhausted. Introductions larger than the design's total slack affect
// every tile (the paper's curves saturate at 100%).
func Figure3(cfg Config) ([]Series, error) {
	cfg = cfg.withDefaults()
	return forEachDesign(cfg, func(d bench.Info) (Series, error) {
		l, err := tiledLayout(d, cfg)
		if err != nil {
			return Series{}, err
		}
		seed := centralTile(l)
		s := Series{Design: d.Name, X: FigXAxis()}
		for _, size := range s.X {
			tiles, err := l.AffectedTiles(seed, size)
			if err != nil {
				// Larger than total slack: all tiles affected.
				s.Y = append(s.Y, 100)
				continue
			}
			s.Y = append(s.Y, 100*float64(len(tiles))/float64(len(l.Tiles)))
		}
		return s, nil
	})
}

// centralTile picks the tile containing the device center, a deterministic
// "test point location".
func centralTile(l *core.Layout) int {
	return l.TileOf(device.XY{X: (l.Dev.W + 1) / 2, Y: (l.Dev.H + 1) / 2})
}

// Figure4 reproduces "Maximum Test Logic Size": the largest per-point test
// logic (CLBs) for 1..100 test points spread over the tiles without
// recruiting neighbors.
func Figure4(cfg Config) ([]Series, error) {
	cfg = cfg.withDefaults()
	return forEachDesign(cfg, func(d bench.Info) (Series, error) {
		l, err := tiledLayout(d, cfg)
		if err != nil {
			return Series{}, err
		}
		s := Series{Design: d.Name, X: FigXAxis()}
		for _, k := range s.X {
			s.Y = append(s.Y, float64(l.MaxTestLogic(k)))
		}
		return s, nil
	})
}

// Figure4Clustered is the end-of-§6.1 variant where all test points land
// in one tile.
func Figure4Clustered(cfg Config) ([]Series, error) {
	cfg = cfg.withDefaults()
	return forEachDesign(cfg, func(d bench.Info) (Series, error) {
		l, err := tiledLayout(d, cfg)
		if err != nil {
			return Series{}, err
		}
		s := Series{Design: d.Name, X: FigXAxis()}
		for _, k := range s.X {
			s.Y = append(s.Y, float64(l.MaxTestLogicClustered(k)))
		}
		return s, nil
	})
}

// FormatSeries renders figure curves as an aligned text table (one column
// per design).
func FormatSeries(title, xlabel string, series []Series) string {
	var b strings.Builder
	fmt.Fprintln(&b, title)
	fmt.Fprintf(&b, "%-8s", xlabel)
	for _, s := range series {
		fmt.Fprintf(&b, "%12s", s.Design)
	}
	fmt.Fprintln(&b)
	if len(series) == 0 {
		return b.String()
	}
	for i := range series[0].X {
		fmt.Fprintf(&b, "%-8d", series[0].X[i])
		for _, s := range series {
			fmt.Fprintf(&b, "%12.1f", s.Y[i])
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// ---------------------------------------------------------------- Fig 5

// Fig5Row is one design × tile-size measurement.
type Fig5Row struct {
	Design   string
	TileFrac float64
	// Speedup is full re-P&R work divided by tile-local work including
	// the fixed non-incremental tail (see FixedTailFraction).
	Speedup float64
	// RawSpeedup omits the fixed tail (pure work ratio).
	RawSpeedup float64
	// VsIncremental compares the incremental-P&R model to tiling.
	VsIncremental float64
	// WallSpeedup is the measured wall-clock ratio.
	WallSpeedup float64
}

// FixedTailFraction models the back-end work that no locality can remove —
// reading the design database and regenerating the full-device bitstream —
// as a fraction of one full place-and-route. It caps attainable speedup at
// 1/FixedTailFraction (paper's best observed: 17×).
const FixedTailFraction = 0.05

// Figure5 reproduces "Place-and-Route Speedup": for each design and tile
// size (fraction of the device), one debugging change is applied and the
// tile-local effort is compared against a full re-place-and-route
// (functional-block / Quick_ECO granularity) and an incremental-P&R
// model. Following the paper, the 2.5% tile size is only run on the three
// largest designs.
func Figure5(cfg Config) ([]Fig5Row, error) {
	cfg = cfg.withDefaults()
	fracs := []float64{0.025, 0.05, 0.15, 0.25}
	large := map[string]bool{"s9234": true, "MIPS R2000": true, "DES": true}
	perDesign, err := forEachDesign(cfg, func(d bench.Info) ([]Fig5Row, error) {
		var rows []Fig5Row
		for _, frac := range fracs {
			if frac == 0.025 && !large[d.Name] {
				continue
			}
			mapped, err := Mapped(d)
			if err != nil {
				return nil, err
			}
			l, err := core.BuildMapped(mapped, core.Spec{
				Overhead: cfg.Overhead, TileFrac: frac, Seed: cfg.Seed, PlaceEffort: cfg.PlaceEffort,
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: %s @%.3f: %w", d.Name, frac, err)
			}
			dl, err := ProbeDelta(l, 0)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s @%.3f change: %w", d.Name, frac, err)
			}
			rep, err := l.ApplyDelta(dl)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s @%.3f change: %w", d.Name, frac, err)
			}
			full, err := l.FullRePlaceRoute(cfg.Seed + 17)
			if err != nil {
				return nil, err
			}
			inc, err := l.IncrementalChange(rep.AffectedTiles, 2.5)
			if err != nil {
				return nil, err
			}
			tail := FixedTailFraction * full.Work()
			row := Fig5Row{
				Design:        d.Name,
				TileFrac:      frac,
				Speedup:       full.Work() / (rep.Effort.Work() + tail),
				RawSpeedup:    full.Work() / rep.Effort.Work(),
				VsIncremental: (inc.Work() + tail) / (rep.Effort.Work() + tail),
			}
			if rep.Effort.Wall > 0 {
				row.WallSpeedup = float64(full.Wall) / float64(rep.Effort.Wall+tailWall(tail, full))
			}
			rows = append(rows, row)
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []Fig5Row
	for _, rs := range perDesign {
		rows = append(rows, rs...)
	}
	return rows, nil
}

// tailWall converts the fixed work tail into wall time at the full run's
// observed work rate.
func tailWall(tailWork float64, full core.Effort) time.Duration {
	if full.Work() == 0 || full.Wall == 0 {
		return 0
	}
	return time.Duration(float64(full.Wall) * tailWork / full.Work())
}

// Fig5Summary computes the paper's headline aggregates: average and median
// speedup per tile size.
func Fig5Summary(rows []Fig5Row) map[float64][2]float64 {
	byFrac := make(map[float64][]float64)
	for _, r := range rows {
		byFrac[r.TileFrac] = append(byFrac[r.TileFrac], r.Speedup)
	}
	out := make(map[float64][2]float64)
	for frac, vals := range byFrac {
		out[frac] = [2]float64{mean(vals), median(vals)}
	}
	return out
}

// FormatFigure5 renders the speedup table plus the paper-style summary.
func FormatFigure5(rows []Fig5Row) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 5. Place-and-Route Speedup (tiling vs full re-P&R)")
	fmt.Fprintf(&b, "%-11s %9s %9s %11s %13s %11s\n", "design", "tile size", "speedup", "raw ratio", "vs increment", "wall ratio")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %8.1f%% %9.1f %11.1f %13.1f %11.1f\n",
			r.Design, r.TileFrac*100, r.Speedup, r.RawSpeedup, r.VsIncremental, r.WallSpeedup)
	}
	sum := Fig5Summary(rows)
	for _, frac := range []float64{0.025, 0.05, 0.15, 0.25} {
		if v, ok := sum[frac]; ok {
			fmt.Fprintf(&b, "tile %.1f%%: average %.1f, median %.1f\n", frac*100, v[0], v[1])
		}
	}
	fmt.Fprintln(&b, "paper: avg(median) 2.5%: 2.8/5.6/17.0 (3 largest); 5%: 7.6(2.6); 15%: 2.1(1.7); 25%: 1.5(1.3)")
	return b.String()
}
