package experiments

// The transactional-engine benchmark behind BENCH_eco.json. Per design
// it measures what the persistent physical engine buys the debug loop:
//
//   - incremental route effort: localization-round physical updates
//     (probe insertions through core.Layout.ApplyDelta, persistent
//     router, locked tile interfaces) versus the from-scratch re-route
//     of the whole design (acceptance bar: ≥ 5× median effort
//     reduction);
//   - transaction cost: Checkpoint+Rollback wall time versus
//     Layout.Clone for obtaining a disposable trial state (bar: ≥ 10×);
//   - delta STA: mean recomputed cone versus live cells, with the
//     incremental engine pinned bit-identical to a full analysis.
//
// Every run doubles as the differential oracle: the persistent-router
// layout must stay digest-identical to a fresh-router reference round
// by round, every rollback must restore the pristine digest, and the
// timing engine must pass SelfCheck — any divergence fails the run.

import (
	"fmt"
	"strings"
	"time"

	"fpgadbg/internal/bench"
	"fpgadbg/internal/core"
	"fpgadbg/internal/logic"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/timing"
)

// ECORow is one design's measurement.
type ECORow struct {
	Design string `json:"design"`
	CLBs   int    `json:"clbs"`
	Tiles  int    `json:"tiles"`
	Rounds int    `json:"rounds"`

	// FullRouteExpansions is the from-scratch re-route effort of the
	// whole design; FullWork the complete re-place-and-route work.
	FullRouteExpansions int64   `json:"full_route_expansions"`
	FullWork            float64 `json:"full_work"`
	// MedianIncrRouteExpansions is the median per-round incremental
	// route effort; RouteSpeedup = full / median (bar: ≥ 5).
	MedianIncrRouteExpansions float64 `json:"median_incr_route_expansions"`
	RouteSpeedup              float64 `json:"route_speedup"`
	// WorkSpeedup compares full re-P&R work to the median round work.
	WorkSpeedup float64 `json:"work_speedup"`

	// CloneNs is the mean wall time of Layout.Clone;
	// CheckpointRollbackNs the mean wall time of Checkpoint plus
	// Rollback around one probe round. RollbackSpeedup = clone /
	// checkpoint+rollback (bar: ≥ 10).
	CloneNs              int64   `json:"clone_ns"`
	CheckpointRollbackNs int64   `json:"checkpoint_rollback_ns"`
	RollbackSpeedup      float64 `json:"rollback_speedup"`

	// Oracle verdicts, all required true for the row to be emitted.
	RollbackIdentical bool `json:"rollback_identical"`
	RouterIdentical   bool `json:"router_identical"`
	STAIdentical      bool `json:"sta_identical"`

	// MeanSTACone is the mean cells recomputed per timing update;
	// STACells the live cell count.
	MeanSTACone float64 `json:"mean_sta_cone"`
	STACells    int     `json:"sta_cells"`
}

// ProbeDelta builds a one-CLB observation change: two internal nets get
// a capture stage (buffer LUT + flip-flop, read back through
// configuration readback like real emulation probes, so no I/O pad is
// consumed) — the paper's "one affected tile" measurement unit. The
// tapped nets are offset by round so successive rounds touch different
// wiring. It is the unit of speculative work shared by every
// physical-engine bench: Figure5, ECOBench, OverlayBench and the
// top-level BenchmarkEcoRound / BenchmarkProbeSwitch.
func ProbeDelta(l *core.Layout, round int) (core.Delta, error) {
	var added []netlist.CellID
	count, skip := 0, 0
	for ni := range l.NL.Nets {
		if count >= 2 {
			break
		}
		net := netlist.NetID(ni)
		if l.NL.Nets[ni].Dead || l.NL.Nets[ni].Driver == netlist.NilCell {
			continue
		}
		if skip < 3*round {
			skip++
			continue
		}
		d := l.NL.AddNet(fmt.Sprintf("ecoprobe%d_%d_d", round, ni))
		q := l.NL.AddNet(fmt.Sprintf("ecoprobe%d_%d_q", round, ni))
		lut, err := l.NL.AddLUT(fmt.Sprintf("ecoprobe%d_%d", round, ni), logic.BufN(), []netlist.NetID{net}, d)
		if err != nil {
			return core.Delta{}, err
		}
		ff, err := l.NL.AddDFF(fmt.Sprintf("ecoprobeff%d_%d", round, ni), d, q, 0)
		if err != nil {
			return core.Delta{}, err
		}
		added = append(added, lut, ff)
		count++
	}
	if count == 0 {
		return core.Delta{}, fmt.Errorf("experiments: no observable nets for round %d", round)
	}
	return core.Delta{Added: added}, nil
}

// ECOBench measures the transactional incremental physical engine on
// every selected design over the given number of localization-style
// rounds (0 = default 4).
func ECOBench(cfg Config, rounds int) ([]ECORow, error) {
	cfg = cfg.withDefaults()
	if rounds < 1 {
		rounds = 4
	}
	return forEachDesign(cfg, func(d bench.Info) (ECORow, error) {
		lay, err := tiledLayout(d, cfg)
		if err != nil {
			return ECORow{}, err
		}
		row := ECORow{Design: d.Name, CLBs: lay.NumCLBs(), Tiles: len(lay.Tiles), Rounds: rounds}

		// Reference copy for the router differential oracle: identical
		// layout, forced onto a fresh router before every update.
		ref := lay.Clone()

		// From-scratch baseline.
		full, err := lay.FullRePlaceRoute(cfg.Seed + 17)
		if err != nil {
			return ECORow{}, fmt.Errorf("experiments: %s baseline: %w", d.Name, err)
		}
		row.FullRouteExpansions = full.RouteExpansions
		row.FullWork = full.Work()

		pristine := lay.StateDigest()

		// Transaction mechanism cost: Checkpoint+Rollback versus Clone
		// for obtaining one disposable trial state. Timing is not
		// attached yet on either side — a clone carries no engine either
		// (it would pay a full rebuild on top) — and the probe delta
		// between the marks is not timed: both mechanisms pay it
		// identically.
		var cloneNs, ckptNs int64
		for r := 0; r < rounds; r++ {
			t0 := time.Now()
			cl := lay.Clone()
			cloneNs += time.Since(t0).Nanoseconds()
			_ = cl

			t1 := time.Now()
			cp := lay.Checkpoint()
			ckptNs += time.Since(t1).Nanoseconds()
			dl, err := ProbeDelta(lay, r)
			if err != nil {
				return ECORow{}, err
			}
			if _, err := lay.ApplyDelta(dl); err != nil {
				return ECORow{}, err
			}
			t2 := time.Now()
			if err := lay.Rollback(cp); err != nil {
				return ECORow{}, err
			}
			ckptNs += time.Since(t2).Nanoseconds()
			if lay.StateDigest() != pristine {
				return ECORow{}, fmt.Errorf("experiments: %s trial %d: rollback did not restore the layout", d.Name, r)
			}
		}
		row.CloneNs = cloneNs / int64(rounds)
		row.CheckpointRollbackNs = ckptNs / int64(rounds)
		if row.CheckpointRollbackNs > 0 {
			row.RollbackSpeedup = float64(row.CloneNs) / float64(row.CheckpointRollbackNs)
		}

		// Delta timing rides along from here on.
		if err := lay.EnableTiming(timing.DefaultModel()); err != nil {
			return ECORow{}, fmt.Errorf("experiments: %s timing: %w", d.Name, err)
		}

		// Localization-style rounds inside one campaign transaction.
		outer := lay.Checkpoint()
		var incrExp, roundWork []float64
		var coneSum float64
		for r := 0; r < rounds; r++ {
			dl, err := ProbeDelta(lay, r)
			if err != nil {
				return ECORow{}, err
			}
			rep, err := lay.ApplyDelta(dl)
			if err != nil {
				return ECORow{}, fmt.Errorf("experiments: %s round %d: %w", d.Name, r, err)
			}
			incrExp = append(incrExp, float64(rep.Effort.RouteExpansions))
			roundWork = append(roundWork, rep.Effort.Work())
			eng := lay.TimingEngine()
			coneSum += float64(eng.LastCone)
			row.STACells = eng.LiveCells
			if err := eng.SelfCheck(); err != nil {
				return ECORow{}, fmt.Errorf("experiments: %s round %d STA oracle: %w", d.Name, r, err)
			}

			// Router differential oracle: the same delta on the
			// fresh-router reference must yield the identical state.
			dr, err := ProbeDelta(ref, r)
			if err != nil {
				return ECORow{}, err
			}
			ref.InvalidateRouter()
			if _, err := ref.ApplyDelta(dr); err != nil {
				return ECORow{}, fmt.Errorf("experiments: %s round %d reference: %w", d.Name, r, err)
			}
			if lay.StateDigest() != ref.StateDigest() {
				return ECORow{}, fmt.Errorf("experiments: %s round %d: persistent router diverged from fresh-router reference", d.Name, r)
			}
		}
		row.RouterIdentical = true
		row.STAIdentical = true
		row.MeanSTACone = coneSum / float64(rounds)

		// Roll the whole campaign back; the pristine digest must return.
		if err := lay.Rollback(outer); err != nil {
			return ECORow{}, err
		}
		if lay.StateDigest() != pristine {
			return ECORow{}, fmt.Errorf("experiments: %s: campaign rollback did not restore the pristine layout", d.Name)
		}
		if err := core.VerifyLayout(lay); err != nil {
			return ECORow{}, fmt.Errorf("experiments: %s after rollback: %w", d.Name, err)
		}
		if err := lay.TimingEngine().SelfCheck(); err != nil {
			return ECORow{}, fmt.Errorf("experiments: %s rollback STA oracle: %w", d.Name, err)
		}
		row.RollbackIdentical = true

		row.MedianIncrRouteExpansions = median(incrExp)
		if row.MedianIncrRouteExpansions > 0 {
			row.RouteSpeedup = float64(row.FullRouteExpansions) / row.MedianIncrRouteExpansions
		}
		if mw := median(roundWork); mw > 0 {
			row.WorkSpeedup = row.FullWork / mw
		}
		return row, nil
	})
}

// ECOSummary returns the catalog-level medians the acceptance bars are
// set on.
func ECOSummary(rows []ECORow) (medianRouteSpeedup, medianRollbackSpeedup float64) {
	var rs, bs []float64
	for _, r := range rows {
		rs = append(rs, r.RouteSpeedup)
		bs = append(bs, r.RollbackSpeedup)
	}
	return median(rs), median(bs)
}

// FormatECO renders the benchmark as a text table.
func FormatECO(rows []ECORow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Transactional incremental physical engine (persistent router, checkpoint/rollback, delta STA)")
	fmt.Fprintf(&b, "%-11s %6s %6s %12s %12s %9s %9s %10s %10s %9s %10s\n",
		"design", "clbs", "tiles", "full route", "incr route", "route x", "work x", "clone us", "txn us", "txn x", "sta cone")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %6d %6d %12d %12.0f %8.1fx %8.1fx %10.0f %10.0f %8.1fx %5.0f/%d\n",
			r.Design, r.CLBs, r.Tiles, r.FullRouteExpansions, r.MedianIncrRouteExpansions,
			r.RouteSpeedup, r.WorkSpeedup,
			float64(r.CloneNs)/1e3, float64(r.CheckpointRollbackNs)/1e3, r.RollbackSpeedup,
			r.MeanSTACone, r.STACells)
	}
	mr, mb := ECOSummary(rows)
	fmt.Fprintf(&b, "catalog medians: route speedup %.1fx (bar 5x), checkpoint/rollback vs clone %.1fx (bar 10x)\n", mr, mb)
	return b.String()
}
