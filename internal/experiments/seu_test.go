package experiments

import (
	"testing"
)

func TestSEUCampaign(t *testing.T) {
	cfg := Config{Designs: []string{"9sym", "styr"}, Seed: 1, Workers: 2}
	rows, err := SEUCampaign(cfg, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Faults == 0 || r.Batches != (r.Faults+63)/64 {
			t.Fatalf("%s: bad universe accounting: %+v", r.Design, r)
		}
		if r.Detected == 0 || r.Coverage <= 0 || r.Coverage > 1 {
			t.Fatalf("%s: implausible coverage: %+v", r.Design, r)
		}
		histSum := 0
		for _, n := range r.LatencyHist {
			histSum += n
		}
		if histSum != r.Detected {
			t.Fatalf("%s: latency histogram sums to %d, want %d", r.Design, histSum, r.Detected)
		}
		if r.Diagnosable <= 0 || r.Diagnosable > 1 {
			t.Fatalf("%s: implausible diagnosable fraction: %+v", r.Design, r)
		}
		if r.MeanLatencyCycles < 1 {
			t.Fatalf("%s: mean latency below 1 cycle: %+v", r.Design, r)
		}
	}
	// Deterministic apart from wall-clock throughput.
	again, err := SEUCampaign(cfg, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		a, b := rows[i], again[i]
		a.FaultsPerSec, b.FaultsPerSec = 0, 0
		if a != b {
			t.Fatalf("SEU campaign not deterministic: %+v vs %+v", a, b)
		}
	}
}

func TestFaultScanBenchFasterThanSerial(t *testing.T) {
	cfg := Config{Designs: []string{"9sym"}, Seed: 1}
	rows, err := FaultScanBench(cfg, 64, 2, 96)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("want 1 row, got %d", len(rows))
	}
	r := rows[0]
	if r.SerialSampled == 0 || r.ParallelFaultsPerSec == 0 || r.SerialFaultsPerSec == 0 {
		t.Fatalf("benchmark measured nothing: %+v", r)
	}
	// The acceptance bar (>= 8x) is recorded by cmd/benchrepro
	// -json-faults under stable conditions; under test parallelism only
	// assert a conservative floor.
	if r.Speedup < 2 {
		t.Fatalf("fault-parallel slower than expected: %.1fx (%+v)", r.Speedup, r)
	}
}
