package experiments

// The debug-overlay benchmark behind BENCH_overlay.json. Per design it
// measures what the pre-reserved observation overlay buys a probe round:
//
//   - probe-switch latency: a full overlay round
//     (Checkpoint + Selector.Select + Rollback — pure configuration
//     mutation) versus the incremental-CAD round it replaces
//     (Checkpoint + InsertMISR + ApplyDelta + Rollback), medians over
//     the measured rounds (acceptance bar: ≥ 20× median speedup);
//   - routability overhead: initial route effort with the reserved
//     tracks plus the one-time trunk routing versus the plain build of
//     the same netlist;
//   - localization rounds: a real campaign on an injected fault, the
//     causal-chain localizer + overlay arm versus the blind-bisection
//     arm, both on the same layout and detection.
//
// Every run doubles as the differential oracle: the value streams
// observed through the overlay (no netlist change) must be bit-identical
// to the streams observed after MISR insertion on the CAD path, every
// timed round must restore the pristine digest, and the overlay layout
// must pass VerifyLayout with the trunks charged — any divergence fails
// the run.

import (
	"fmt"
	"strings"
	"time"

	"fpgadbg/internal/bench"
	"fpgadbg/internal/core"
	"fpgadbg/internal/debug"
	"fpgadbg/internal/faults"
	"fpgadbg/internal/instr"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/overlay"
	"fpgadbg/internal/sim"
	"fpgadbg/internal/testgen"
)

// OverlayRow is one design's measurement.
type OverlayRow struct {
	Design   string `json:"design"`
	CLBs     int    `json:"clbs"`
	Channels int    `json:"channels"`
	// Taps is the number of nets the observation network covers (every
	// live cell output at plan time); TrunkLen the routed trunk
	// wirelength in channel edges.
	Taps     int `json:"taps"`
	TrunkLen int `json:"trunk_len"`
	Rounds   int `json:"rounds"`

	// BaseRouteExpansions is the route effort of the plain build;
	// OverlayRouteExpansions the effort of the reserved build plus the
	// one-time trunk routing. RouteOverheadPct is the relative increase.
	BaseRouteExpansions    int64   `json:"base_route_expansions"`
	OverlayRouteExpansions int64   `json:"overlay_route_expansions"`
	RouteOverheadPct       float64 `json:"route_overhead_pct"`

	// MedianSwitchNs is the median wall time of one overlay probe round
	// (checkpoint + tap-mux select + rollback); MedianCADNs the median
	// of the incremental-CAD round it replaces (checkpoint + MISR
	// insertion + ApplyDelta + rollback). SwitchSpeedup = cad / switch
	// (bar: ≥ 20).
	MedianSwitchNs float64 `json:"median_switch_ns"`
	MedianCADNs    float64 `json:"median_cad_ns"`
	SwitchSpeedup  float64 `json:"switch_speedup"`

	// BitIdentical reports the differential oracle: the streams observed
	// through the overlay equal the streams observed after MISR
	// insertion, word for word. Required true for the row to be emitted.
	BitIdentical bool `json:"bit_identical"`

	// Campaign arm: an injected fault localized twice on the same layout
	// and detection — once with the causal-chain localizer feeding
	// overlay probe rounds, once blind on the CAD path. Detected is
	// false when the injected fault was not excited (both round counts
	// are then zero). Sequential reports whether the design has state.
	// CausalRounds/BlindRounds count the probe rounds that actually
	// narrowed each arm's verdict (Diagnosis.ConvergeRound — past it the
	// budget only confirms the final set), and CausalSuspects/
	// BlindSuspects the final suspect-set size each arm reached on the
	// identical budget: the arms are only comparable on both numbers
	// together, since a blind arm that never shrinks its cone "converges"
	// at round zero with the whole cone still suspect. BlindRounds is -1
	// when the blind arm's probe logic was unroutable (BlindCADError
	// carries the router's error): the CAD path inserts real MISRs, and
	// on congested designs those can fail to route — the regime the
	// overlay removes entirely.
	Detected         bool   `json:"detected"`
	Sequential       bool   `json:"sequential"`
	CausalRounds     int    `json:"causal_rounds"`
	CausalSuspects   int    `json:"causal_suspects"`
	BlindRounds      int    `json:"blind_rounds"`
	BlindSuspects    int    `json:"blind_suspects"`
	BlindCADError    string `json:"blind_cad_error,omitempty"`
	OverlaySwitches  int    `json:"overlay_switches"`
	OverlayFallbacks int    `json:"overlay_fallbacks"`
}

// overlayDetectWords/Cycles are the campaign-arm detection parameters —
// small enough to keep the bench interactive, long enough to excite and
// localize typical injected faults on the catalog.
const (
	overlayDetectWords  = 4
	overlayDetectCycles = 16
	overlayMaxRounds    = 6
	overlayProbesRound  = 4
)

// OverlayBench measures the pre-reserved debug overlay on every selected
// design over the given number of timed probe-switch rounds (0 = default 8).
func OverlayBench(cfg Config, rounds int) ([]OverlayRow, error) {
	cfg = cfg.withDefaults()
	if rounds < 1 {
		rounds = 8
	}
	return forEachDesign(cfg, func(d bench.Info) (OverlayRow, error) {
		golden, err := Mapped(d)
		if err != nil {
			return OverlayRow{}, err
		}
		impl := golden.Clone()
		if _, err := faults.InjectRandom(impl, cfg.Seed+41); err != nil {
			return OverlayRow{}, fmt.Errorf("experiments: %s inject: %w", d.Name, err)
		}

		// Plain build of the same netlist: the routability baseline.
		base, err := core.BuildMapped(impl.Clone(), core.Spec{
			Overhead: cfg.Overhead, TileFrac: 0.10, Seed: cfg.Seed, PlaceEffort: cfg.PlaceEffort,
		})
		if err != nil {
			return OverlayRow{}, fmt.Errorf("experiments: %s base: %w", d.Name, err)
		}

		// Overlay build: user nets route with the reserved tracks
		// withheld, then the trunks are routed once into the headroom
		// and locked.
		lay, err := core.BuildMapped(impl, core.Spec{
			Overhead: cfg.Overhead, TileFrac: 0.10, Seed: cfg.Seed, PlaceEffort: cfg.PlaceEffort,
			OverlayReserve: overlay.DefaultReserve,
		})
		if err != nil {
			return OverlayRow{}, fmt.Errorf("experiments: %s reserved build: %w", d.Name, err)
		}
		plan, err := overlay.Build(lay, overlay.DefaultChannels)
		if err != nil {
			return OverlayRow{}, fmt.Errorf("experiments: %s: %w", d.Name, err)
		}
		if err := core.VerifyLayout(lay); err != nil {
			return OverlayRow{}, fmt.Errorf("experiments: %s overlay layout: %w", d.Name, err)
		}

		row := OverlayRow{
			Design: d.Name, CLBs: lay.NumCLBs(), Rounds: rounds,
			Channels: plan.Channels, Taps: plan.Taps, TrunkLen: plan.TrunkLen,
			BaseRouteExpansions:    base.BuildEffort.RouteExpansions,
			OverlayRouteExpansions: lay.BuildEffort.RouteExpansions + plan.RouteExpansions,
		}
		if row.BaseRouteExpansions > 0 {
			row.RouteOverheadPct = 100 * float64(row.OverlayRouteExpansions-row.BaseRouteExpansions) /
				float64(row.BaseRouteExpansions)
		}
		for ci := range impl.Cells {
			if !impl.Cells[ci].Dead && impl.Cells[ci].Kind == netlist.KindDFF {
				row.Sequential = true
				break
			}
		}

		// Round-robin tap batches: one covered net per channel per round,
		// conflict-free by construction, rotating so every timed round
		// actually moves the muxes.
		chanNames := make([][]string, plan.Channels)
		for ci := range lay.NL.Cells {
			c := &lay.NL.Cells[ci]
			if c.Dead || c.Out == netlist.NilNet {
				continue
			}
			name := lay.NL.NetName(c.Out)
			if ch, ok := plan.Channel(name); ok {
				chanNames[ch] = append(chanNames[ch], name)
			}
		}
		batch := func(r int) []string {
			var b []string
			for ch := range chanNames {
				if n := len(chanNames[ch]); n > 0 {
					b = append(b, chanNames[ch][r%n])
				}
			}
			return b
		}

		// Timed probe rounds: the overlay switch cycle versus the
		// incremental-CAD cycle it replaces, on the same layout.
		pristine := lay.StateDigest()
		sel := plan.NewSelector(lay)
		var switchNs, cadNs []float64
		for r := 0; r < rounds; r++ {
			names := batch(r)
			ids := make([]netlist.NetID, len(names))
			for i, name := range names {
				id, ok := lay.NL.NetByName(name)
				if !ok {
					return OverlayRow{}, fmt.Errorf("experiments: %s: net %q vanished", d.Name, name)
				}
				ids[i] = id
			}

			t0 := time.Now()
			cp := lay.Checkpoint()
			if err := sel.Select(names); err != nil {
				return OverlayRow{}, fmt.Errorf("experiments: %s round %d: %w", d.Name, r, err)
			}
			if err := lay.Rollback(cp); err != nil {
				return OverlayRow{}, err
			}
			switchNs = append(switchNs, float64(time.Since(t0).Nanoseconds()))

			t1 := time.Now()
			cp = lay.Checkpoint()
			misr, err := instr.InsertMISR(lay.NL, fmt.Sprintf("ovb%d", r), ids)
			if err != nil {
				return OverlayRow{}, fmt.Errorf("experiments: %s round %d MISR: %w", d.Name, r, err)
			}
			if _, err := lay.ApplyDelta(core.Delta{Added: misr.Cells}); err != nil {
				return OverlayRow{}, fmt.Errorf("experiments: %s round %d CAD: %w", d.Name, r, err)
			}
			if err := lay.Rollback(cp); err != nil {
				return OverlayRow{}, err
			}
			cadNs = append(cadNs, float64(time.Since(t1).Nanoseconds()))

			if lay.StateDigest() != pristine {
				return OverlayRow{}, fmt.Errorf("experiments: %s round %d: rollback did not restore the layout", d.Name, r)
			}
		}
		row.MedianSwitchNs = median(switchNs)
		row.MedianCADNs = median(cadNs)
		if row.MedianSwitchNs > 0 {
			row.SwitchSpeedup = row.MedianCADNs / row.MedianSwitchNs
		}

		// Differential oracle: observing through the overlay changes
		// nothing in the design, so the target streams must be
		// bit-identical before and after the CAD path's MISR insertion.
		if err := overlayBitIdentity(lay, batch(0), cfg.Seed); err != nil {
			return OverlayRow{}, fmt.Errorf("experiments: %s: %w", d.Name, err)
		}
		row.BitIdentical = true

		// Campaign arm: localize the injected fault twice on this layout
		// — causal + overlay versus blind bisection — inside rolled-back
		// transactions so the arms see the identical pristine state.
		causal, blind, err := overlayCampaignArms(golden, lay, plan, cfg.Seed, &row)
		if err != nil {
			return OverlayRow{}, fmt.Errorf("experiments: %s campaign: %w", d.Name, err)
		}
		row.CausalRounds, row.BlindRounds = causal, blind
		if lay.StateDigest() != pristine {
			return OverlayRow{}, fmt.Errorf("experiments: %s: campaign arms leaked into the layout", d.Name)
		}
		return row, nil
	})
}

// overlayBitIdentity replays one stimulus with the target nets probed,
// inserts a MISR on the same targets (the CAD path's observation logic)
// and replays again: the probed streams must match word for word.
func overlayBitIdentity(lay *core.Layout, names []string, seed int64) error {
	nl := lay.NL
	ids := make([]netlist.NetID, len(names))
	for i, name := range names {
		id, ok := nl.NetByName(name)
		if !ok {
			return fmt.Errorf("net %q vanished", name)
		}
		ids[i] = id
	}
	piNames := nl.SortedPINames()
	stim := testgen.Repeat(testgen.RandomBlocks(len(piNames), 2, seed), 16)
	run := func() (*sim.Trace, error) {
		m, err := sim.Compile(nl)
		if err != nil {
			return nil, err
		}
		if err := m.BindNames(piNames); err != nil {
			return nil, err
		}
		if err := m.Probe(ids...); err != nil {
			return nil, err
		}
		return m.RunTrace(stim), nil
	}
	before, err := run()
	if err != nil {
		return err
	}
	cp := lay.Checkpoint()
	defer func() {
		if err := lay.Rollback(cp); err != nil {
			panic(fmt.Sprintf("experiments: bit-identity rollback: %v", err))
		}
	}()
	misr, err := instr.InsertMISR(nl, "ovdiff", ids)
	if err != nil {
		return err
	}
	if _, err := lay.ApplyDelta(core.Delta{Added: misr.Cells}); err != nil {
		return err
	}
	after, err := run()
	if err != nil {
		return err
	}
	for c := 0; c < len(stim); c++ {
		for k := range ids {
			if before.ProbeVal(c, k) != after.ProbeVal(c, k) {
				return fmt.Errorf("overlay stream diverged from MISR-path stream at cycle %d, tap %s",
					c, names[k])
			}
		}
	}
	return nil
}

// overlayCampaignArms detects the injected fault once per arm on the
// same layout and localizes it with and without the causal-chain
// localizer + overlay fast path, returning the probe-round counts.
func overlayCampaignArms(golden *netlist.Netlist, lay *core.Layout, plan *overlay.Plan, seed int64, row *OverlayRow) (causal, blind int, err error) {
	arm := func(useOverlay bool) (int, int, error) {
		cp := lay.Checkpoint()
		defer func() {
			if rerr := lay.Rollback(cp); rerr != nil {
				panic(fmt.Sprintf("experiments: campaign-arm rollback: %v", rerr))
			}
		}()
		sess, err := debug.NewSession(golden, lay, seed)
		if err != nil {
			return 0, 0, err
		}
		if useOverlay {
			sess.Overlay = plan.NewSelector(lay)
			sess.Causal = true
		}
		det, err := sess.Detect(overlayDetectWords, overlayDetectCycles)
		if err != nil {
			return 0, 0, err
		}
		if !det.Failed {
			return -1, 0, nil
		}
		diag, err := sess.Localize(det, overlayMaxRounds, overlayProbesRound)
		if err != nil {
			return 0, 0, err
		}
		if useOverlay {
			row.OverlaySwitches = sess.OverlaySwitches
			row.OverlayFallbacks = sess.OverlayFallbacks
		}
		// The arms are compared on the rounds that actually narrowed the
		// verdict (past ConvergeRound the budget only confirms the final
		// set, so total Rounds saturates and stops discriminating) AND on
		// how small a set they reached.
		return diag.ConvergeRound, len(diag.Suspects), nil
	}
	var nsusp int
	causal, nsusp, err = arm(true)
	if err != nil {
		return 0, 0, err
	}
	if causal < 0 {
		return 0, 0, nil // fault not excited by this detection budget
	}
	row.CausalSuspects = nsusp
	blind, nsusp, err = arm(false)
	if err != nil {
		// The blind arm observes through real MISR insertions; on a
		// congested layout those can be unroutable. The overlay arm
		// already localized on the same layout, so record the CAD
		// failure as data rather than failing the benchmark.
		row.Detected = true
		row.BlindCADError = err.Error()
		return causal, -1, nil
	}
	row.Detected = true
	row.BlindSuspects = nsusp
	return causal, blind, nil
}

// OverlaySummary returns the catalog-level aggregates the acceptance
// bars are set on: the median probe-switch speedup, the worst per-design
// routability overhead, the probe rounds the causal localizer saved,
// and the total suspect-set shrink it bought on detected designs.
//
// Rounds saved is conservative: when both arms reach the same suspect
// set it is the plain converge-round difference; when blind bisection
// spent its whole budget without ever matching the causal verdict, the
// budget is a lower bound on the rounds blind would need, so
// overlayMaxRounds − causal is credited; an unroutable blind arm
// credits nothing.
func OverlaySummary(rows []OverlayRow) (medianSpeedup, maxOverheadPct float64, roundsSaved, suspectCut int) {
	var sp []float64
	for _, r := range rows {
		sp = append(sp, r.SwitchSpeedup)
		if r.RouteOverheadPct > maxOverheadPct {
			maxOverheadPct = r.RouteOverheadPct
		}
		if !r.Detected || r.BlindRounds < 0 {
			continue
		}
		switch {
		case r.CausalSuspects == r.BlindSuspects:
			roundsSaved += r.BlindRounds - r.CausalRounds
		case r.CausalSuspects < r.BlindSuspects:
			roundsSaved += overlayMaxRounds - r.CausalRounds
		}
		suspectCut += r.BlindSuspects - r.CausalSuspects
	}
	return median(sp), maxOverheadPct, roundsSaved, suspectCut
}

// FormatOverlay renders the benchmark as a text table.
func FormatOverlay(rows []OverlayRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Pre-reserved debug overlay (zero-CAD probe switching + causal-chain localizer)")
	fmt.Fprintf(&b, "%-11s %6s %5s %6s %9s %9s %9s %8s %11s %11s %6s\n",
		"design", "clbs", "taps", "trunk", "switch ns", "cad ns", "switch x", "route %", "causal", "blind", "ident")
	for _, r := range rows {
		causal := fmt.Sprintf("%dr/%ds", r.CausalRounds, r.CausalSuspects)
		blind := fmt.Sprintf("%dr/%ds", r.BlindRounds, r.BlindSuspects)
		if r.BlindRounds < 0 {
			blind = "unroutable" // the CAD arm could not route its MISR probes
		}
		if !r.Detected {
			causal, blind = "-", "-"
		}
		fmt.Fprintf(&b, "%-11s %6d %5d %6d %9.0f %9.0f %8.1fx %7.1f%% %11s %11s %6v\n",
			r.Design, r.CLBs, r.Taps, r.TrunkLen, r.MedianSwitchNs, r.MedianCADNs,
			r.SwitchSpeedup, r.RouteOverheadPct, causal, blind, r.BitIdentical)
	}
	ms, mo, saved, cut := OverlaySummary(rows)
	fmt.Fprintf(&b, "catalog: median probe-switch speedup %.1fx (bar 20x), worst routability overhead %.1f%%, causal localizer: %d probe rounds saved, suspect sets %d cells tighter\n",
		ms, mo, saved, cut)
	return b.String()
}
