package experiments

// The repair campaign and the candidate-validation throughput benchmark.
// Both exercise the lane-parallel repair engine (internal/repair) over
// the injected-fault universe: every universe fault with a netlist form
// whose dictionary signature class is tight enough to localize without
// probes is injected into a clone of the tiled layout, diagnosed through
// the fault dictionary and repaired by candidate search — the golden
// design acting only as a behavioural oracle. The campaign reports the
// repair-success rate (acceptance bar: ≥ 90% of dictionary-localizable
// single faults repaired and ECO-verified); the benchmark times
// lane-parallel versus serial clone+recompile candidate validation
// (acceptance bar: ≥ 8×) into BENCH_repair.json.

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"fpgadbg/internal/core"
	"fpgadbg/internal/debug"
	"fpgadbg/internal/faults"
	"fpgadbg/internal/logic"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/repair"
	"fpgadbg/internal/sim"
)

// RepairRow is one design's repair-campaign outcome.
type RepairRow struct {
	Design string `json:"design"`
	// Universe is the exhaustive single-fault count; Injectable how many
	// have a netlist form (LUT-bit flips and stuck-ats on LUT-driven
	// nets); Localizable how many of those the fault dictionary resolves
	// to a probe-free suspect class.
	Universe    int `json:"universe"`
	Injectable  int `json:"injectable"`
	Localizable int `json:"localizable"`
	// Attempted is the sampled localizable faults actually injected and
	// put through detect → localize → repair; Repaired how many ended in
	// an applied, ECO-verified, re-detection-clean candidate repair.
	Attempted  int     `json:"attempted"`
	Repaired   int     `json:"repaired"`
	RepairRate float64 `json:"repair_rate"`
	// Fallbacks counts attempts where the candidate search was
	// inconclusive (the loop would fall back to the golden copy).
	Fallbacks int `json:"fallbacks"`
	// MeanCandidates and MeanBatches average the search size of
	// conclusive repairs (fallback attempts return no search counters).
	MeanCandidates float64 `json:"mean_candidates"`
	MeanBatches    float64 `json:"mean_batches"`
	// Candidate-validation throughput: candidates per second through the
	// 64-lane engine versus the serial clone+recompile baseline, measured
	// on one representative faulty design.
	BenchCandidates     int     `json:"bench_candidates"`
	SerialCandsPerSec   float64 `json:"serial_cands_per_sec"`
	ParallelCandsPerSec float64 `json:"parallel_cands_per_sec"`
	Speedup             float64 `json:"speedup"`
}

// repairApply mutates an implementation netlist (matched by name, so it
// works on layout-owned clones) with one universe fault. Faults without
// a netlist form report ok=false.
func repairApply(nl, golden *netlist.Netlist, f faults.Fault) bool {
	switch f.Kind {
	case faults.LUTBitFlip:
		id, found := nl.CellByName(golden.CellName(f.Cell))
		if !found {
			return false
		}
		tt, err := nl.Cells[id].Func.TT()
		if err != nil {
			return false
		}
		tt.SetBit(uint64(f.Bit), !tt.Bit(uint64(f.Bit)))
		return nl.SetFunc(id, tt.ToCover()) == nil
	case faults.StuckAt0, faults.StuckAt1:
		id, found := nl.NetByName(golden.NetName(f.Net))
		if !found {
			return false
		}
		d := nl.Nets[id].Driver
		if d == netlist.NilCell || nl.Cells[d].Kind != netlist.KindLUT {
			return false
		}
		return nl.SetFunc(d, logic.Const(nl.Cells[d].Func.N, f.Kind == faults.StuckAt1)) == nil
	default:
		return false
	}
}

// RepairCampaign runs the repair engine over every design: build the
// dictionary, classify the universe, inject up to maxFaults localizable
// faults (stride-sampled) and repair each through the full session path
// — dictionary localization, lane-parallel candidate search, tile-local
// ECO apply and verification. Timing runs serially per design so the
// speedup columns are unskewed.
func RepairCampaign(cfg Config, words, cycles, maxFaults int) ([]RepairRow, error) {
	cfg = cfg.withDefaults()
	if words < 1 {
		words = 4
	}
	if cycles < 1 {
		cycles = 2
	}
	if maxFaults < 1 {
		maxFaults = 24
	}
	var rows []RepairRow
	for _, d := range cfg.catalog() {
		golden, err := Mapped(d)
		if err != nil {
			return nil, err
		}
		prog, err := sim.Compile(golden)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", d.Name, err)
		}
		dict, err := debug.BuildFaultDict(prog, words, cycles, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", d.Name, err)
		}
		u := faults.Universe(golden)
		row := RepairRow{Design: d.Name, Universe: len(u)}

		// Classify the universe under the dictionary stimulus: which
		// faults are injectable, and which of those does the dictionary
		// localize probe-free?
		npi := len(prog.PIOrder())
		dictStim := debug.DictStimulus(npi, words, cycles, cfg.Seed)
		results, err := faults.ScanStim(prog, u, dictStim, nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", d.Name, err)
		}
		classCells := make(map[uint64]map[string]bool)
		for _, r := range results {
			if !r.Detected {
				continue
			}
			if classCells[r.Signature] == nil {
				classCells[r.Signature] = map[string]bool{}
			}
			if name, ok := r.Fault.SuspectCell(golden); ok {
				classCells[r.Signature][name] = true
			}
		}
		injectable := func(f faults.Fault) bool {
			switch f.Kind {
			case faults.LUTBitFlip:
				return true
			case faults.StuckAt0, faults.StuckAt1:
				dr := golden.Nets[f.Net].Driver
				return dr != netlist.NilCell && golden.Cells[dr].Kind == netlist.KindLUT
			default:
				return false
			}
		}
		var localizable []faults.Fault
		for _, r := range results {
			if !injectable(r.Fault) {
				continue
			}
			row.Injectable++
			if !r.Detected {
				continue
			}
			n := len(classCells[r.Signature])
			if n >= 1 && n <= debug.DefaultDictMaxSuspects {
				localizable = append(localizable, r.Fault)
			}
		}
		row.Localizable = len(localizable)

		// The tiled layout is built once per design; every attempt runs
		// inside a layout transaction on the SAME layout and rolls back
		// afterwards — the per-fault Layout.Clone the campaign used to
		// pay is gone (checkpoint/rollback restores the pristine state
		// bit-identically, asserted below).
		pristine, err := core.BuildMapped(golden.Clone(), core.Spec{
			Overhead: cfg.Overhead, TileFrac: 0.25, Seed: cfg.Seed, PlaceEffort: cfg.PlaceEffort,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", d.Name, err)
		}
		pristineDigest := pristine.StateDigest()

		sample := strideSample(localizable, maxFaults)
		sumCands, sumBatches := 0, 0
		var benchSuspects []string
		for _, f := range sample {
			attempt := func() error {
				cp := pristine.Checkpoint()
				defer func() {
					if err := pristine.Rollback(cp); err != nil {
						panic(fmt.Sprintf("experiments: %s: attempt rollback: %v", d.Name, err))
					}
				}()
				if !repairApply(pristine.NL, golden, f) {
					return nil
				}
				sess, err := debug.NewSession(golden, pristine, cfg.Seed)
				if err != nil {
					return err
				}
				sess.Dict = dict
				sess.SetGoldenMachine(prog.Fork())
				det, err := sess.Detect(words, cycles)
				if err != nil {
					return fmt.Errorf("experiments: %s: %w", d.Name, err)
				}
				if !det.Failed {
					return nil // packed detection did not excite this one
				}
				diag, err := sess.LocalizeDict(det, 4, 4)
				if err != nil {
					return err
				}
				row.Attempted++
				cor, err := sess.Repair(diag, det)
				if err != nil {
					if !errors.Is(err, debug.ErrRepairInconclusive) {
						return fmt.Errorf("experiments: %s: %w", d.Name, err)
					}
					row.Fallbacks++
					return nil
				}
				sumCands += cor.Candidates
				sumBatches += cor.Batches
				if cor.Repaired && cor.Verified && cor.ECOVerified {
					row.Repaired++
				}
				if benchSuspects == nil {
					benchSuspects = diag.Suspects
				}
				return nil
			}
			if err := attempt(); err != nil {
				return nil, err
			}
		}
		if got := pristine.StateDigest(); got != pristineDigest {
			return nil, fmt.Errorf("experiments: %s: attempts leaked into the pristine layout (%s != %s)",
				d.Name, got, pristineDigest)
		}
		if row.Attempted > 0 {
			row.RepairRate = float64(row.Repaired) / float64(row.Attempted)
		}
		if conclusive := row.Attempted - row.Fallbacks; conclusive > 0 {
			row.MeanCandidates = float64(sumCands) / float64(conclusive)
			row.MeanBatches = float64(sumBatches) / float64(conclusive)
		}

		// Candidate-validation throughput on one representative fault.
		if len(sample) > 0 {
			impl := golden.Clone()
			if repairApply(impl, golden, sample[0]) {
				br, err := repairValidationBench(prog, golden, impl, benchSuspects, words, cycles, cfg.Seed)
				if err != nil {
					return nil, fmt.Errorf("experiments: %s: %w", d.Name, err)
				}
				row.BenchCandidates = br.candidates
				row.SerialCandsPerSec = br.serial
				row.ParallelCandsPerSec = br.parallel
				if br.serial > 0 {
					row.Speedup = br.parallel / br.serial
				}
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

type repairBenchResult struct {
	candidates int
	serial     float64
	parallel   float64
}

// repairValidationBench times lane-parallel vs serial validation of one
// candidate list on one faulty implementation. The suspect pool is
// padded with additional cells until the list spans several 64-lane
// batches, so both sides time the same multi-batch workload.
func repairValidationBench(goldenProg *sim.Machine, golden, impl *netlist.Netlist,
	suspects []string, words, cycles int, seed int64) (repairBenchResult, error) {

	implProg, err := sim.Compile(impl)
	if err != nil {
		return repairBenchResult{}, err
	}
	eng, err := repair.NewEngine(goldenProg, implProg)
	if err != nil {
		return repairBenchResult{}, err
	}
	pool := append([]string(nil), suspects...)
	seen := make(map[string]bool, len(pool))
	for _, s := range pool {
		seen[s] = true
	}
	for ci := range impl.Cells {
		if len(pool) >= 24 {
			break
		}
		c := &impl.Cells[ci]
		if c.Dead || c.Kind != netlist.KindLUT || len(c.Fanin) > 4 || seen[c.Name] {
			continue
		}
		pool = append(pool, c.Name)
	}
	npi := len(goldenProg.PIOrder())
	stim := debug.DictStimulus(npi, words, cycles, seed)
	cands, err := eng.Enumerate(pool, stim)
	if err != nil {
		return repairBenchResult{}, err
	}
	if len(cands) == 0 {
		return repairBenchResult{}, nil
	}

	// Warm once, then time the lane-parallel pass.
	if _, _, err := eng.Validate(cands[:min(len(cands), 64)], stim, nil); err != nil {
		return repairBenchResult{}, err
	}
	start := time.Now()
	par, _, err := eng.Validate(cands, stim, nil)
	if err != nil {
		return repairBenchResult{}, err
	}
	parWall := time.Since(start)

	start = time.Now()
	ser, err := eng.SerialValidate(cands, stim)
	if err != nil {
		return repairBenchResult{}, err
	}
	serWall := time.Since(start)

	// The differential guarantee, enforced on every benchmark run too.
	for i := range cands {
		if par[i] != ser[i] {
			return repairBenchResult{}, fmt.Errorf("surviving-candidate sets diverge at %d (%s)",
				i, cands[i].Describe())
		}
	}
	out := repairBenchResult{candidates: len(cands)}
	if s := parWall.Seconds(); s > 0 {
		out.parallel = float64(len(cands)) / s
	}
	if s := serWall.Seconds(); s > 0 {
		out.serial = float64(len(cands)) / s
	}
	return out, nil
}

// FormatRepair renders the campaign as a text table.
func FormatRepair(rows []RepairRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Repair campaign: lane-parallel candidate search over dictionary-localizable faults")
	fmt.Fprintf(&b, "%-11s %8s %8s %8s %8s %8s %7s %9s %12s %12s %9s\n",
		"design", "universe", "inject", "localiz", "attempt", "repaired", "rate", "cands/rep", "serial c/s", "parallel c/s", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %8d %8d %8d %8d %8d %6.1f%% %9.1f %12.0f %12.0f %8.1fx\n",
			r.Design, r.Universe, r.Injectable, r.Localizable, r.Attempted, r.Repaired,
			100*r.RepairRate, r.MeanCandidates, r.SerialCandsPerSec, r.ParallelCandsPerSec, r.Speedup)
	}
	return b.String()
}
