// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6). Each experiment returns structured rows and can
// render itself as the text table the paper prints; cmd/benchrepro and the
// top-level benchmarks are thin wrappers around this package.
//
// Absolute numbers come from our own substrate (simulated XC4000-class
// device, our SA placer and negotiated-congestion router), so they differ
// from the paper's 1990s toolchain; EXPERIMENTS.md records both sides.
package experiments
