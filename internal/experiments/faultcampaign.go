package experiments

import (
	"fmt"
	"strings"

	"fpgadbg/internal/bench"
	"fpgadbg/internal/faults"
	"fpgadbg/internal/sim"
)

// FaultCampaignRow summarizes random-pattern error-detection coverage for
// one design: of n independently injected design errors, how many does
// plain output comparison against the golden model expose, and how
// quickly.
type FaultCampaignRow struct {
	Design     string `json:"design"`
	Injections int    `json:"injections"`
	Detected   int    `json:"detected"`
	// AvgCycles is the mean number of 64-pattern cycles until the first
	// diverging output among detected errors.
	AvgCycles float64 `json:"avg_cycles_to_detect"`
}

// FaultCampaign injects errors (seeds 1..injections) into clones of each
// tech-mapped design and replays words blocks of random stimulus held for
// cycles clock cycles against the golden model — the detection half of
// the paper's loop as a pure-emulation workload. Campaigns are
// independent, so designs fan out over the worker pool; each comparison
// runs through the compiled allocation-free trace path.
func FaultCampaign(cfg Config, injections, words, cycles int) ([]FaultCampaignRow, error) {
	cfg = cfg.withDefaults()
	if injections < 1 {
		injections = 16
	}
	return forEachDesign(cfg, func(d bench.Info) (FaultCampaignRow, error) {
		golden, err := Mapped(d)
		if err != nil {
			return FaultCampaignRow{}, err
		}
		// The golden side never changes: compile it once per design and
		// reuse it across the whole campaign.
		goldenM, err := sim.Compile(golden)
		if err != nil {
			return FaultCampaignRow{}, fmt.Errorf("experiments: %s: %w", d.Name, err)
		}
		row := FaultCampaignRow{Design: d.Name, Injections: injections}
		totalCycles := 0
		for seed := int64(1); seed <= int64(injections); seed++ {
			mutant := golden.Clone()
			if _, err := faults.InjectRandom(mutant, seed); err != nil {
				return FaultCampaignRow{}, fmt.Errorf("experiments: %s seed %d: %w", d.Name, seed, err)
			}
			mm, err := sim.EquivalentCompiled(goldenM, mutant, words, cycles, cfg.Seed+seed)
			if err != nil {
				return FaultCampaignRow{}, fmt.Errorf("experiments: %s seed %d: %w", d.Name, seed, err)
			}
			if mm != nil {
				row.Detected++
				totalCycles += mm.Cycle + 1
			}
		}
		if row.Detected > 0 {
			row.AvgCycles = float64(totalCycles) / float64(row.Detected)
		}
		return row, nil
	})
}

// FormatFaultCampaign renders campaign coverage as a text table.
func FormatFaultCampaign(rows []FaultCampaignRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Fault campaign: random-pattern detection coverage")
	fmt.Fprintf(&b, "%-11s %10s %9s %10s %15s\n", "design", "injected", "detected", "coverage", "avg cyc@detect")
	for _, r := range rows {
		cov := 0.0
		if r.Injections > 0 {
			cov = 100 * float64(r.Detected) / float64(r.Injections)
		}
		fmt.Fprintf(&b, "%-11s %10d %9d %9.1f%% %15.1f\n", r.Design, r.Injections, r.Detected, cov, r.AvgCycles)
	}
	return b.String()
}
