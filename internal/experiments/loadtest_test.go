package experiments

import "testing"

func TestServiceLoadTestSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("load test in -short mode")
	}
	rep, err := ServiceLoadTest(Config{PlaceEffort: 0.3}, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Campaigns != 8 || rep.Workers != 4 {
		t.Fatalf("shape: %+v", rep)
	}
	if !rep.Deterministic || !rep.SeedStable {
		t.Fatalf("results not reproducible: deterministic=%v seed-stable=%v",
			rep.Deterministic, rep.SeedStable)
	}
	if rep.Clean != 2*rep.Campaigns {
		t.Fatalf("%d/%d campaigns clean", rep.Clean, 2*rep.Campaigns)
	}
	if rep.Cache.Hits == 0 || rep.CacheSpeedup <= 1 {
		t.Fatalf("cache ineffective: %+v", rep)
	}
	if rep.ColdThroughput <= 0 || rep.WarmThroughput <= 0 {
		t.Fatalf("throughput not measured: %+v", rep)
	}
}

func TestSummarizePercentiles(t *testing.T) {
	s := summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if s.P50 != 5 || s.Max != 10 || s.P99 != 9 {
		t.Fatalf("summary = %+v", s)
	}
	if z := summarize(nil); z.Mean != 0 {
		t.Fatalf("empty summary = %+v", z)
	}
}
