package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"fpgadbg/internal/coord"
	"fpgadbg/internal/service"
	"fpgadbg/internal/store"
)

// The durable-store benchmark: what persistence costs and what it buys.
// Four measurements, serialized to BENCH_store.json by cmd/benchrepro
// -json-store:
//
//   - journal append throughput, fsync-per-record vs NoSync — the price
//     of the durability guarantee itself;
//   - recovery (replay) time as a function of journal length — how fast
//     a restarted daemon gets back to serving;
//   - warm resume: campaigns re-run after a restart against the spilled
//     netlist blobs, with the digest-equality check that makes resume
//     trustworthy and the spill hit rate that makes it fast;
//   - shard balance: the routing split a design-affinity coordinator
//     produces over a mixed submission burst, plus its steal count.

// AppendRate is one journal append-throughput measurement.
type AppendRate struct {
	Records    int     `json:"records"`
	Bytes      int64   `json:"bytes"`
	WallMs     float64 `json:"wall_ms"`
	RecsPerSec float64 `json:"records_per_sec"`
	MBPerSec   float64 `json:"mb_per_sec"`
}

// RecoveryPoint is one journal-replay timing: open a store holding
// Records valid records and fold them into the recovery view.
type RecoveryPoint struct {
	Records   int     `json:"records"`
	RecoverMs float64 `json:"recover_ms"`
}

// StoreBenchReport is the -json-store document.
type StoreBenchReport struct {
	// Journal throughput, with and without the per-record fsync.
	SyncAppend   AppendRate `json:"sync_append"`
	NoSyncAppend AppendRate `json:"nosync_append"`
	// SyncPenalty is the NoSync/sync throughput ratio — how much of the
	// append budget the durability fsync consumes.
	SyncPenalty float64 `json:"sync_penalty"`
	// Recovery time vs journal length (records replayed at open).
	Recovery []RecoveryPoint `json:"recovery"`
	// Warm resume across a daemon restart: the same specs resubmitted to
	// a service reopened on the same data directory.
	ResumeCampaigns   int     `json:"resume_campaigns"`
	ResumeDigestsOK   bool    `json:"resume_digests_ok"`
	ResumeSpillHits   int64   `json:"resume_spill_hits"`
	ResumeSpillMisses int64   `json:"resume_spill_misses"`
	ResumeHitRate     float64 `json:"resume_hit_rate"`
	// MemDiskParity: a campaign's digest is identical on an in-memory
	// store, a disk store, and no store at all.
	MemDiskParity bool `json:"mem_disk_parity"`
	// Shard balance over a mixed burst through the coordinator.
	Replicas     int     `json:"replicas"`
	Routed       []int64 `json:"routed"`
	Steals       int64   `json:"steals"`
	ShardBalance float64 `json:"shard_balance"` // min/max routed share
}

// benchRecord is a representative journal payload: a submit record
// carrying a realistic campaign spec.
func benchRecord(i int) store.Record {
	spec, _ := json.Marshal(service.Spec{
		Design: "9sym", FaultSeed: int64(i),
		PlaceEffort: 0.3, TileFrac: 0.25, Words: 4, Cycles: 2,
	})
	return store.Record{Kind: store.KindSubmit, ID: fmt.Sprintf("c%06d", i+1), Spec: spec}
}

// measureAppend writes n representative records to a fresh disk store.
func measureAppend(n int, noSync bool) (AppendRate, error) {
	dir, err := os.MkdirTemp("", "storebench")
	if err != nil {
		return AppendRate{}, err
	}
	defer os.RemoveAll(dir)
	st, err := store.OpenDisk(dir, store.DiskOptions{NoSync: noSync})
	if err != nil {
		return AppendRate{}, err
	}
	defer st.Close()
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := st.Append(benchRecord(i)); err != nil {
			return AppendRate{}, err
		}
	}
	wall := time.Since(start)
	s := st.Stats()
	rate := AppendRate{
		Records: n,
		Bytes:   s.JournalBytes,
		WallMs:  float64(wall.Microseconds()) / 1000,
	}
	if sec := wall.Seconds(); sec > 0 {
		rate.RecsPerSec = float64(n) / sec
		rate.MBPerSec = float64(s.JournalBytes) / (1 << 20) / sec
	}
	return rate, nil
}

// measureRecovery times a full journal replay for each length: write n
// records (NoSync — the write is scaffolding, the replay is the
// measurement), reopen the directory and fold.
func measureRecovery(lengths []int) ([]RecoveryPoint, error) {
	var out []RecoveryPoint
	for _, n := range lengths {
		dir, err := os.MkdirTemp("", "storebench")
		if err != nil {
			return nil, err
		}
		st, err := store.OpenDisk(dir, store.DiskOptions{NoSync: true})
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		for i := 0; i < n; i++ {
			if _, err := st.Append(benchRecord(i)); err != nil {
				st.Close()
				os.RemoveAll(dir)
				return nil, err
			}
		}
		st.Close()

		start := time.Now()
		st2, err := store.OpenDisk(dir, store.DiskOptions{})
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		rec, err := st2.Recover()
		replay := time.Since(start)
		st2.Close()
		os.RemoveAll(dir)
		if err != nil {
			return nil, err
		}
		if rec.Records != n {
			return nil, fmt.Errorf("experiments: recovery folded %d records, wrote %d", rec.Records, n)
		}
		out = append(out, RecoveryPoint{Records: n, RecoverMs: float64(replay.Microseconds()) / 1000})
	}
	return out, nil
}

// storeSpecs is the campaign mix for the resume and sharding phases:
// two fault seeds over at least two catalog designs. The defaults land
// on different FNV shards of 2, so the shard-balance phase measures a
// genuine split rather than a degenerate all-on-one-replica burst.
func storeSpecs(cfg Config) []service.Spec {
	designs := cfg.Designs
	if len(designs) < 2 {
		designs = []string{"9sym", "c880"}
	}
	var specs []service.Spec
	for _, d := range designs {
		for fs := int64(1); fs <= 2; fs++ {
			specs = append(specs, service.Spec{
				Design: d, FaultSeed: fs, Seed: cfg.Seed,
				PlaceEffort: cfg.PlaceEffort, TileFrac: 0.25, Words: 4, Cycles: 2,
			})
		}
	}
	return specs
}

// runAll submits every spec to api and returns design/seed-keyed digests.
func runAll(api service.API, specs []service.Spec) (map[string]string, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	type waiter interface {
		Wait(ctx context.Context, id string) (*service.Result, error)
	}
	w, ok := api.(waiter)
	if !ok {
		return nil, fmt.Errorf("experiments: API %T cannot wait", api)
	}
	digests := make(map[string]string)
	for _, sp := range specs {
		id, err := api.Submit(sp)
		if err != nil {
			return nil, err
		}
		res, err := w.Wait(ctx, id)
		if err != nil {
			return nil, fmt.Errorf("experiments: campaign %s (%s): %w", id, loadSpecKey(sp), err)
		}
		digests[loadSpecKey(sp)] = res.Digest
	}
	return digests, nil
}

// StoreBench runs all four measurements. records sizes the journal
// throughput arms (default 2000); the recovery curve uses 1/8, 1/2 and
// the full count.
func StoreBench(cfg Config, records int) (*StoreBenchReport, error) {
	cfg = cfg.withDefaults()
	if records <= 0 {
		records = 2000
	}
	rep := &StoreBenchReport{}

	var err error
	if rep.SyncAppend, err = measureAppend(records, false); err != nil {
		return nil, err
	}
	if rep.NoSyncAppend, err = measureAppend(records, true); err != nil {
		return nil, err
	}
	if rep.SyncAppend.RecsPerSec > 0 {
		rep.SyncPenalty = rep.NoSyncAppend.RecsPerSec / rep.SyncAppend.RecsPerSec
	}

	lengths := []int{records / 8, records / 2, records}
	if rep.Recovery, err = measureRecovery(lengths); err != nil {
		return nil, err
	}

	// Warm resume across a restart.
	specs := storeSpecs(cfg)
	rep.ResumeCampaigns = len(specs)
	dir, err := os.MkdirTemp("", "storebench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	st, err := store.OpenDisk(dir, store.DiskOptions{})
	if err != nil {
		return nil, err
	}
	svc, err := service.Open(service.Config{Workers: cfg.Workers, Store: st})
	if err != nil {
		return nil, err
	}
	before, err := runAll(svc, specs)
	if err != nil {
		svc.Close()
		return nil, err
	}
	svc.Close()

	st2, err := store.OpenDisk(dir, store.DiskOptions{})
	if err != nil {
		return nil, err
	}
	svc2, err := service.Open(service.Config{Workers: cfg.Workers, Store: st2})
	if err != nil {
		return nil, err
	}
	after, err := runAll(svc2, specs)
	if err != nil {
		svc2.Close()
		return nil, err
	}
	stats := svc2.Stats()
	svc2.Close()
	rep.ResumeDigestsOK = true
	for key, d := range before {
		if after[key] != d {
			rep.ResumeDigestsOK = false
		}
	}
	rep.ResumeSpillHits = stats.SpillHits
	rep.ResumeSpillMisses = stats.SpillMisses
	if total := stats.SpillHits + stats.SpillMisses; total > 0 {
		rep.ResumeHitRate = float64(stats.SpillHits) / float64(total)
	}

	// Mem/disk/none parity on the first spec.
	memSvc, err := service.Open(service.Config{Workers: cfg.Workers, Store: store.NewMem()})
	if err != nil {
		return nil, err
	}
	memDigests, err := runAll(memSvc, specs[:1])
	memSvc.Close()
	if err != nil {
		return nil, err
	}
	bare := service.New(service.Config{Workers: cfg.Workers})
	bareDigests, err := runAll(bare, specs[:1])
	bare.Close()
	if err != nil {
		return nil, err
	}
	key := loadSpecKey(specs[0])
	rep.MemDiskParity = memDigests[key] == before[key] && bareDigests[key] == before[key]

	// Shard balance: the mixed burst through a 2-replica coordinator.
	co, err := coord.New(coord.Config{Replicas: 2, Service: service.Config{Workers: cfg.Workers}})
	if err != nil {
		return nil, err
	}
	burst := make([]service.Spec, 0, 4*len(specs))
	for i := 0; i < 4; i++ {
		burst = append(burst, specs...)
	}
	if _, err := runAll(co, burst); err != nil {
		co.Close()
		return nil, err
	}
	rs := co.RouteStats()
	co.Close()
	rep.Replicas = len(rs.Routed)
	rep.Routed = rs.Routed
	rep.Steals = rs.Steals
	minR, maxR := rs.Routed[0], rs.Routed[0]
	for _, n := range rs.Routed {
		if n < minR {
			minR = n
		}
		if n > maxR {
			maxR = n
		}
	}
	if maxR > 0 {
		rep.ShardBalance = float64(minR) / float64(maxR)
	}
	return rep, nil
}

// FormatStoreBench renders the report.
func FormatStoreBench(r *StoreBenchReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Durable store benchmark\n")
	fmt.Fprintf(&b, "%-8s %8s %10s %12s %10s\n", "journal", "records", "wall", "records/s", "MB/s")
	row := func(name string, a AppendRate) {
		fmt.Fprintf(&b, "%-8s %8d %8.0fms %12.0f %10.2f\n", name, a.Records, a.WallMs, a.RecsPerSec, a.MBPerSec)
	}
	row("fsync", r.SyncAppend)
	row("nosync", r.NoSyncAppend)
	fmt.Fprintf(&b, "fsync costs %.1fx throughput\n", r.SyncPenalty)
	fmt.Fprintf(&b, "recovery: ")
	for i, p := range r.Recovery {
		if i > 0 {
			fmt.Fprintf(&b, ", ")
		}
		fmt.Fprintf(&b, "%d recs in %.1fms", p.Records, p.RecoverMs)
	}
	fmt.Fprintf(&b, "\nresume: %d campaigns, digests-ok=%v, spill hit rate %.0f%% (%d hits, %d misses), mem/disk parity=%v\n",
		r.ResumeCampaigns, r.ResumeDigestsOK, 100*r.ResumeHitRate,
		r.ResumeSpillHits, r.ResumeSpillMisses, r.MemDiskParity)
	fmt.Fprintf(&b, "sharding: %d replicas routed %v (%d steals), balance %.2f\n",
		r.Replicas, r.Routed, r.Steals, r.ShardBalance)
	return b.String()
}
