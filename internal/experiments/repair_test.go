package experiments

import "testing"

// TestRepairCampaignMeetsBars runs the repair campaign on the smallest
// design and pins the acceptance bars: ≥90% of sampled
// dictionary-localizable faults repaired and ECO-verified, and the
// lane-parallel candidate validation faster than the serial
// clone+recompile baseline (the full ≥8× measurement lives in
// BENCH_repair.json; a shared CI box only gets a loose floor).
func TestRepairCampaignMeetsBars(t *testing.T) {
	cfg := Config{Designs: []string{"9sym"}, PlaceEffort: 0.3, Seed: 1}
	rows, err := RepairCampaign(cfg, 4, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("want one row, got %d", len(rows))
	}
	r := rows[0]
	if r.Universe == 0 || r.Injectable == 0 || r.Localizable == 0 {
		t.Fatalf("classification empty: %+v", r)
	}
	if r.Attempted < 5 {
		t.Fatalf("only %d faults attempted — sample too small to be meaningful", r.Attempted)
	}
	if r.RepairRate < 0.9 {
		t.Fatalf("repair rate %.0f%% below the 90%% bar (%d/%d)", 100*r.RepairRate, r.Repaired, r.Attempted)
	}
	if r.BenchCandidates == 0 || r.ParallelCandsPerSec <= r.SerialCandsPerSec {
		t.Fatalf("lane-parallel validation not faster than serial: %+v", r)
	}
}
