package experiments

import (
	"math"
	"testing"
)

// fastCfg limits to the two smallest designs at low effort so the test
// suite stays quick; the full harness runs through cmd/benchrepro and the
// top-level benchmarks.
func fastCfg() Config {
	return Config{Designs: []string{"9sym", "c880"}, PlaceEffort: 0.25, Seed: 7}
}

func TestTable1Shapes(t *testing.T) {
	rows, err := Table1(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.AreaOverhead < 0.19 {
			t.Errorf("%s: area overhead %.3f below the 20%% slack floor", r.Design, r.AreaOverhead)
		}
		if math.Abs(r.TimingOverhead) > 0.8 {
			t.Errorf("%s: timing overhead %.3f implausibly large", r.Design, r.TimingOverhead)
		}
		if r.CLBs == 0 || r.PaperCLBs == 0 {
			t.Errorf("%s: missing CLB counts", r.Design)
		}
	}
	out := FormatTable1(rows)
	if len(out) == 0 {
		t.Fatal("empty rendering")
	}
}

func TestFigure3Shapes(t *testing.T) {
	series, err := Figure3(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		if len(s.Y) != len(FigXAxis()) {
			t.Fatalf("%s: wrong sample count", s.Design)
		}
		// Monotone nondecreasing, bounded by 100.
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i]+1e-9 < s.Y[i-1] {
				t.Errorf("%s: affected%% decreased at x=%d", s.Design, s.X[i])
			}
			if s.Y[i] > 100 {
				t.Errorf("%s: affected%% exceeds 100", s.Design)
			}
		}
		// Small designs must saturate at 100% for 100-CLB insertions
		// (their whole slack is ~7-60 CLBs).
		if s.Y[len(s.Y)-1] != 100 {
			t.Errorf("%s: 100-CLB insertion should affect all tiles, got %.1f%%", s.Design, s.Y[len(s.Y)-1])
		}
	}
}

func TestFigure4Shapes(t *testing.T) {
	cfg := fastCfg()
	series, err := Figure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] > s.Y[i-1] {
				t.Errorf("%s: max test logic grew with more points at x=%d", s.Design, s.X[i])
			}
		}
	}
	clustered, err := Figure4Clustered(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(clustered) != len(series) {
		t.Fatal("clustered variant lost series")
	}
	if out := FormatSeries("fig4", "#points", series); len(out) == 0 {
		t.Fatal("empty rendering")
	}
}

func TestFigure5Shapes(t *testing.T) {
	rows, err := Figure5(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Two small designs × three tile sizes (no 2.5% for small ones).
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	byDesign := map[string][]Fig5Row{}
	for _, r := range rows {
		if r.Speedup < 1 {
			t.Errorf("%s @%.1f%%: tiling slower than full re-P&R (%.2f)", r.Design, r.TileFrac*100, r.Speedup)
		}
		if r.RawSpeedup < r.Speedup {
			t.Errorf("%s: raw ratio below capped ratio", r.Design)
		}
		byDesign[r.Design] = append(byDesign[r.Design], r)
	}
	// Headline shape: small tiles beat the largest tiles.
	for d, rs := range byDesign {
		if rs[0].Speedup < rs[len(rs)-1].Speedup {
			t.Errorf("%s: speedup did not fall as tiles grew: %.1f -> %.1f",
				d, rs[0].Speedup, rs[len(rs)-1].Speedup)
		}
	}
	if out := FormatFigure5(rows); len(out) == 0 {
		t.Fatal("empty rendering")
	}
}

func TestOverheadSweepShapes(t *testing.T) {
	// 9sym is logic-bound (few pads), so slack growth is visible; c880 is
	// IOB-ring-bound and its device size is set by pads, not slack.
	rows, err := OverheadSweep(Config{Designs: []string{"9sym"}, PlaceEffort: 0.25, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// More slack -> strictly more total free sites.
	if rows[2].TotalSlack <= rows[0].TotalSlack {
		t.Errorf("30%% slack has no more free sites than 10%%: %d vs %d", rows[2].TotalSlack, rows[0].TotalSlack)
	}
	if out := FormatOverheadSweep(rows); len(out) == 0 {
		t.Fatal("empty rendering")
	}
}

func TestBoundaryAblationShapes(t *testing.T) {
	rows, err := BoundaryAblation(Config{Designs: []string{"9sym"}, PlaceEffort: 0.25, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.OptimizedCrossings > r.UniformCrossings {
			t.Errorf("%s: min-cut boundaries worse than uniform (%d > %d)",
				r.Design, r.OptimizedCrossings, r.UniformCrossings)
		}
	}
	if out := FormatBoundaryAblation(rows); len(out) == 0 {
		t.Fatal("empty rendering")
	}
}

func TestStatsHelpers(t *testing.T) {
	if mean(nil) != 0 || median(nil) != 0 {
		t.Fatal("empty input should be 0")
	}
	if mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean")
	}
	if median([]float64{5, 1, 3}) != 3 {
		t.Fatal("odd median")
	}
	if median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatal("even median")
	}
}

func TestFaultCampaignShapes(t *testing.T) {
	rows, err := FaultCampaign(fastCfg(), 6, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Injections != 6 {
			t.Errorf("%s: injections = %d", r.Design, r.Injections)
		}
		if r.Detected < 1 || r.Detected > r.Injections {
			t.Errorf("%s: implausible detection count %d of %d", r.Design, r.Detected, r.Injections)
		}
		if r.Detected > 0 && r.AvgCycles < 1 {
			t.Errorf("%s: detected errors but avg cycles %.1f", r.Design, r.AvgCycles)
		}
	}
	if out := FormatFaultCampaign(rows); len(out) == 0 {
		t.Fatal("empty rendering")
	}
}

func TestParallelFanOutMatchesSerial(t *testing.T) {
	// Same experiment, one worker vs many: identical rows in identical
	// order (the fan-out must not perturb seeds or ordering).
	serial := fastCfg()
	serial.Workers = 1
	parallel := fastCfg()
	parallel.Workers = 4
	a, err := Figure4(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure4(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("series count %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Design != b[i].Design {
			t.Fatalf("series %d: order changed: %s vs %s", i, a[i].Design, b[i].Design)
		}
		for j := range a[i].Y {
			if a[i].Y[j] != b[i].Y[j] {
				t.Fatalf("%s sample %d: %v vs %v", a[i].Design, j, a[i].Y[j], b[i].Y[j])
			}
		}
	}
}

func TestECOBenchOracle(t *testing.T) {
	rows, err := ECOBench(fastCfg(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.RollbackIdentical || !r.RouterIdentical || !r.STAIdentical {
			t.Fatalf("%s: oracle verdicts %v/%v/%v", r.Design, r.RollbackIdentical, r.RouterIdentical, r.STAIdentical)
		}
		if r.RouteSpeedup < 2 {
			t.Errorf("%s: incremental route speedup %.1fx implausibly low", r.Design, r.RouteSpeedup)
		}
		// RollbackSpeedup is a wall-clock ratio on microsecond-scale
		// operations — too noisy for a floor here (and skewed under
		// -race); the ≥ 10x bar is enforced by the full-catalog
		// benchrepro -json-eco run recorded in BENCH_eco.json.
		if r.CloneNs <= 0 || r.CheckpointRollbackNs <= 0 {
			t.Errorf("%s: transaction timings missing (%d, %d)", r.Design, r.CloneNs, r.CheckpointRollbackNs)
		}
		if r.MeanSTACone <= 0 || r.STACells <= 0 {
			t.Errorf("%s: missing STA statistics", r.Design)
		}
	}
	if out := FormatECO(rows); len(out) == 0 {
		t.Fatal("empty rendering")
	}
}
