package netlist

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"fpgadbg/internal/logic"
)

// buildFullAdder constructs a 1-bit full adder: sum = a^b^cin,
// cout = maj(a,b,cin).
func buildFullAdder(t testing.TB) (*Netlist, NetID, NetID) {
	t.Helper()
	n := New("fa")
	a := n.AddPI("a")
	b := n.AddPI("b")
	cin := n.AddPI("cin")
	sum := n.AddNet("sum")
	cout := n.AddNet("cout")
	n.MustAddLUT("xor3", logic.XorN(3), []NetID{a, b, cin}, sum)
	n.MustAddLUT("maj3", logic.Maj3(), []NetID{a, b, cin}, cout)
	n.MarkPO(sum)
	n.MarkPO(cout)
	if err := n.CheckDriven(); err != nil {
		t.Fatal(err)
	}
	return n, sum, cout
}

func TestBuildFullAdder(t *testing.T) {
	n, _, _ := buildFullAdder(t)
	s := n.Stats()
	if s.LUTs != 2 || s.DFFs != 0 || s.PIs != 3 || s.POs != 2 {
		t.Fatalf("stats: %v", s)
	}
	if s.Depth != 1 {
		t.Fatalf("depth = %d", s.Depth)
	}
}

func TestDuplicateNamesDisambiguated(t *testing.T) {
	n := New("dup")
	a := n.AddNet("x")
	b := n.AddNet("x")
	if n.Nets[a].Name == n.Nets[b].Name {
		t.Fatalf("duplicate net names: %q %q", n.Nets[a].Name, n.Nets[b].Name)
	}
	if !strings.HasPrefix(n.Nets[b].Name, "x$") {
		t.Fatalf("unexpected disambiguation %q", n.Nets[b].Name)
	}
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleDriveRejected(t *testing.T) {
	n := New("dd")
	a := n.AddPI("a")
	out := n.AddNet("out")
	n.MustAddLUT("b1", logic.BufN(), []NetID{a}, out)
	if _, err := n.AddLUT("b2", logic.BufN(), []NetID{a}, out); err == nil {
		t.Fatal("double drive not rejected")
	}
}

func TestCoverWidthMismatchRejected(t *testing.T) {
	n := New("w")
	a := n.AddPI("a")
	out := n.AddNet("out")
	if _, err := n.AddLUT("bad", logic.XorN(2), []NetID{a}, out); err == nil {
		t.Fatal("width mismatch not rejected")
	}
}

func TestDFF(t *testing.T) {
	n := New("seq")
	d := n.AddPI("d")
	q := n.AddNet("q")
	n.MustAddDFF("ff", d, q, 1)
	n.MarkPO(q)
	if err := n.CheckDriven(); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddDFF("bad", d, n.AddNet("q2"), 2); err == nil {
		t.Fatal("init=2 not rejected")
	}
	s := n.Stats()
	if s.DFFs != 1 {
		t.Fatalf("stats %v", s)
	}
}

func TestTopoOrderAndCycle(t *testing.T) {
	n := New("cyc")
	a := n.AddPI("a")
	x := n.AddNet("x")
	y := n.AddNet("y")
	n.MustAddLUT("g1", logic.AndN(2), []NetID{a, y}, x)
	n.MustAddLUT("g2", logic.BufN(), []NetID{x}, y)
	n.MarkPO(y)
	if _, err := n.TopoOrder(); err == nil {
		t.Fatal("combinational cycle not detected")
	}
	// Breaking the cycle with a DFF makes it legal.
	m := New("seqcyc")
	am := m.AddPI("a")
	xm := m.AddNet("x")
	ym := m.AddNet("y")
	m.MustAddLUT("g1", logic.AndN(2), []NetID{am, ym}, xm)
	m.MustAddDFF("ff", xm, ym, 0)
	m.MarkPO(ym)
	order, err := m.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 {
		t.Fatalf("order %v", order)
	}
	// The LUT must come before the DFF.
	if m.Cells[order[0]].Kind != KindLUT || m.Cells[order[1]].Kind != KindDFF {
		t.Fatalf("order kinds wrong")
	}
}

func TestTopoRespectsDependencies(t *testing.T) {
	n := New("chain")
	a := n.AddPI("a")
	prev := a
	var ids []CellID
	for i := 0; i < 20; i++ {
		out := n.AddNet("")
		ids = append(ids, n.MustAddLUT("", logic.NotN(), []NetID{prev}, out))
		prev = out
	}
	n.MarkPO(prev)
	order, err := n.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[CellID]int)
	for i, id := range order {
		pos[id] = i
	}
	for i := 1; i < len(ids); i++ {
		if pos[ids[i-1]] >= pos[ids[i]] {
			t.Fatalf("chain out of order at %d", i)
		}
	}
	_, depth, err := n.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if depth != 20 {
		t.Fatalf("depth = %d", depth)
	}
}

func TestRemoveCellAndNet(t *testing.T) {
	n, sum, _ := buildFullAdder(t)
	id, ok := n.CellByName("xor3")
	if !ok {
		t.Fatal("xor3 missing")
	}
	if err := n.RemoveCell(id); err != nil {
		t.Fatal(err)
	}
	if n.Nets[sum].Driver != NilCell {
		t.Fatal("driver not cleared")
	}
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
	// sum is a PO so RemoveNet of a PO-but-undriven net is allowed only
	// without sinks; it has none.
	if err := n.RemoveNet(sum); err != nil {
		t.Fatal(err)
	}
	// Removing a driven net must fail.
	cout, _ := n.NetByName("cout")
	if err := n.RemoveNet(cout); err == nil {
		t.Fatal("removing driven net should fail")
	}
}

func TestRemoveNetWithSinksFails(t *testing.T) {
	n := New("s")
	a := n.AddPI("a")
	out := n.AddNet("o")
	n.MustAddLUT("b", logic.BufN(), []NetID{a}, out)
	if err := n.RemoveNet(a); err == nil {
		t.Fatal("net with sinks removed")
	}
}

func TestFanouts(t *testing.T) {
	n, _, _ := buildFullAdder(t)
	a, _ := n.NetByName("a")
	fan := n.Fanouts()
	if len(fan[a]) != 2 {
		t.Fatalf("a fanout = %d", len(fan[a]))
	}
}

func TestSetFanin(t *testing.T) {
	n, _, _ := buildFullAdder(t)
	id, _ := n.CellByName("xor3")
	b, _ := n.NetByName("b")
	if err := n.SetFanin(id, 2, b); err != nil {
		t.Fatal(err)
	}
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
	if err := n.SetFanin(id, 9, b); err == nil {
		t.Fatal("bad pin accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	n, _, _ := buildFullAdder(t)
	c := n.Clone()
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
	// Mutating the clone must not affect the original.
	id, _ := c.CellByName("xor3")
	c.Cells[id].Func.Cubes[0] = logic.Cube{}
	a, _ := c.NetByName("a")
	b, _ := c.NetByName("b")
	_ = c.SetFanin(id, 0, b)
	_ = a
	orig, _ := n.CellByName("xor3")
	if n.Cells[orig].Func.Cubes[0] == (logic.Cube{}) {
		t.Fatal("clone shares cover storage")
	}
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestCompact(t *testing.T) {
	n, _, _ := buildFullAdder(t)
	id, _ := n.CellByName("maj3")
	cout, _ := n.NetByName("cout")
	if err := n.RemoveCell(id); err != nil {
		t.Fatal(err)
	}
	// Drop dangling PO before compaction to keep CheckDriven happy.
	for i, po := range n.POs {
		if po == cout {
			n.POs = append(n.POs[:i], n.POs[i+1:]...)
			break
		}
	}
	if err := n.RemoveNet(cout); err != nil {
		t.Fatal(err)
	}
	out, cellMap, netMap := n.Compact()
	if err := out.CheckDriven(); err != nil {
		t.Fatal(err)
	}
	if out.NumLiveCells() != 1 || out.NumLiveNets() != 4 {
		t.Fatalf("compacted sizes: %d cells %d nets", out.NumLiveCells(), out.NumLiveNets())
	}
	if cellMap[id] != NilCell || netMap[cout] != NilNet {
		t.Fatal("dead entries must map to nil")
	}
	if len(out.PIs) != 3 || len(out.POs) != 1 {
		t.Fatalf("pi/po counts %d/%d", len(out.PIs), len(out.POs))
	}
}

func TestSweepDead(t *testing.T) {
	n := New("sweep")
	a := n.AddPI("a")
	used := n.AddNet("used")
	unused := n.AddNet("unused")
	mid := n.AddNet("mid")
	n.MustAddLUT("keep", logic.BufN(), []NetID{a}, used)
	n.MustAddLUT("deadmid", logic.NotN(), []NetID{a}, mid)
	n.MustAddLUT("deadend", logic.NotN(), []NetID{mid}, unused)
	n.MarkPO(used)
	removed := n.SweepDead()
	if removed != 2 {
		t.Fatalf("removed %d, want 2", removed)
	}
	if n.NumLiveCells() != 1 {
		t.Fatalf("live cells %d", n.NumLiveCells())
	}
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestTransitiveCones(t *testing.T) {
	n := New("cone")
	a := n.AddPI("a")
	b := n.AddPI("b")
	x := n.AddNet("x")
	q := n.AddNet("q")
	y := n.AddNet("y")
	g1 := n.MustAddLUT("g1", logic.AndN(2), []NetID{a, b}, x)
	ff := n.MustAddDFF("ff", x, q, 0)
	g2 := n.MustAddLUT("g2", logic.NotN(), []NetID{q}, y)
	n.MarkPO(y)

	fin := n.TransitiveFanin([]NetID{y}, false)
	if !fin[g2] || !fin[ff] || fin[g1] {
		t.Fatalf("fanin (no through): %v", fin)
	}
	finT := n.TransitiveFanin([]NetID{y}, true)
	if !finT[g1] || !finT[ff] || !finT[g2] {
		t.Fatalf("fanin (through): %v", finT)
	}
	fout := n.TransitiveFanout([]NetID{a}, true)
	if !fout[g1] || !fout[ff] || !fout[g2] {
		t.Fatalf("fanout (through): %v", fout)
	}
	foutN := n.TransitiveFanout([]NetID{a}, false)
	if !foutN[g1] || !foutN[ff] || foutN[g2] {
		t.Fatalf("fanout (no through): %v", foutN)
	}
}

// randomDAG builds a random acyclic netlist for property tests.
func randomDAG(r *rand.Rand) *Netlist {
	n := New("rand")
	nets := []NetID{}
	for i := 0; i < 3+r.Intn(5); i++ {
		nets = append(nets, n.AddPI(""))
	}
	cells := 5 + r.Intn(30)
	for i := 0; i < cells; i++ {
		k := 1 + r.Intn(4)
		if k > len(nets) {
			k = len(nets)
		}
		fanin := make([]NetID, k)
		for j := range fanin {
			fanin[j] = nets[r.Intn(len(nets))]
		}
		out := n.AddNet("")
		if r.Intn(6) == 0 {
			n.MustAddDFF("", fanin[0], out, uint8(r.Intn(2)))
		} else {
			cov := logic.Cover{N: k}
			for c := 0; c < 1+r.Intn(3); c++ {
				var cu logic.Cube
				for v := 0; v < k; v++ {
					switch r.Intn(3) {
					case 0:
						cu = cu.WithLit(v, false)
					case 1:
						cu = cu.WithLit(v, true)
					}
				}
				cov.Cubes = append(cov.Cubes, cu)
			}
			n.MustAddLUT("", cov, fanin, out)
		}
		nets = append(nets, out)
	}
	n.MarkPO(nets[len(nets)-1])
	return n
}

// Property: random DAG netlists always pass Check, have a valid topo
// order, and Clone+Check round-trips.
func TestQuickRandomNetlists(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(5))}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomDAG(r)
		if err := n.CheckDriven(); err != nil {
			t.Logf("check: %v", err)
			return false
		}
		order, err := n.TopoOrder()
		if err != nil {
			return false
		}
		if len(order) != n.NumLiveCells() {
			return false
		}
		// Every LUT's fanin drivers (LUTs) precede it.
		pos := make(map[CellID]int)
		for i, id := range order {
			pos[id] = i
		}
		for _, id := range order {
			c := &n.Cells[id]
			if c.Kind != KindLUT {
				continue
			}
			for _, f := range c.Fanin {
				d := n.Nets[f].Driver
				if d != NilCell && n.Cells[d].Kind == KindLUT && pos[d] >= pos[id] {
					return false
				}
			}
		}
		cl := n.Clone()
		return cl.Check() == nil
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Compact preserves live structure counts and passes Check.
func TestQuickCompact(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(9))}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomDAG(r)
		n.SweepDead()
		out, _, _ := n.Compact()
		if out.Check() != nil {
			return false
		}
		return out.NumLiveCells() == n.NumLiveCells() && out.NumLiveNets() == n.NumLiveNets() &&
			len(out.PIs) == len(n.PIs) && len(out.POs) == len(n.POs)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTopoOrder(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	n := New("bench")
	nets := []NetID{}
	for i := 0; i < 8; i++ {
		nets = append(nets, n.AddPI(""))
	}
	for i := 0; i < 5000; i++ {
		fanin := []NetID{nets[r.Intn(len(nets))], nets[r.Intn(len(nets))]}
		out := n.AddNet("")
		n.MustAddLUT("", logic.AndN(2), fanin, out)
		nets = append(nets, out)
	}
	n.MarkPO(nets[len(nets)-1])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.TopoOrder(); err != nil {
			b.Fatal(err)
		}
	}
}
