package netlist

import (
	"fmt"

	"fpgadbg/internal/logic"
)

// The mutation journal. While journaling is enabled (core.Layout
// transactions turn it on), every mutating method appends the inverse
// operation to an append-only undo log. RollbackJournal replays the log
// tail in reverse, restoring the netlist bit-identically in O(delta);
// nested transactions are integer marks into the same log, so an inner
// rollback never disturbs an outer checkpoint. The log costs one branch
// per mutation when disabled.

type journalKind uint8

const (
	opNetAdded journalKind = iota
	opPIAdded
	opPOAdded
	opCellAdded
	opFaninSet
	opFuncSet
	opInitSet
	opCellRemoved
	opNetRemoved
)

type journalOp struct {
	kind journalKind
	cell CellID
	net  NetID
	pin  int
	init uint8
	// hadDriver marks a removed cell that was still its output's driver.
	hadDriver bool
	name      string
	fn        logic.Cover
}

// SetJournaling enables or disables the mutation journal. Turning it off
// does not discard recorded operations; pair with TruncateJournal(0) when
// closing the outermost transaction.
func (n *Netlist) SetJournaling(on bool) { n.journaling = on }

// JournalActive reports whether mutations are currently being recorded.
func (n *Netlist) JournalActive() bool { return n.journaling }

// JournalLen returns the current journal position — the mark value for a
// nested checkpoint.
func (n *Netlist) JournalLen() int { return len(n.journal) }

// TruncateJournal discards journal entries at or beyond mark without
// applying them (transaction commit).
func (n *Netlist) TruncateJournal(mark int) {
	if mark < len(n.journal) {
		n.journal = n.journal[:mark]
	}
}

// RollbackJournal undoes every mutation recorded at or beyond mark, in
// reverse order, and truncates the journal to mark. It returns the cells
// and nets whose state was touched by the rollback (for incremental
// timing resynchronization); both may contain IDs that no longer exist
// after the rollback (rolled-back additions).
func (n *Netlist) RollbackJournal(mark int) (cells []CellID, nets []NetID) {
	for i := len(n.journal) - 1; i >= mark; i-- {
		op := &n.journal[i]
		switch op.kind {
		case opNetAdded:
			nets = append(nets, op.net)
			delete(n.netByName, op.name)
			if int(op.net) != len(n.Nets)-1 {
				panic(fmt.Sprintf("netlist: journal out of order: net %d is not the newest (%d)", op.net, len(n.Nets)-1))
			}
			n.Nets = n.Nets[:op.net]
		case opPIAdded:
			n.PIs = n.PIs[:len(n.PIs)-1]
		case opPOAdded:
			n.POs = n.POs[:len(n.POs)-1]
		case opCellAdded:
			cells = append(cells, op.cell)
			c := &n.Cells[op.cell]
			if n.Nets[c.Out].Driver == op.cell {
				n.Nets[c.Out].Driver = NilCell
			}
			delete(n.cellByName, op.name)
			if int(op.cell) != len(n.Cells)-1 {
				panic(fmt.Sprintf("netlist: journal out of order: cell %d is not the newest (%d)", op.cell, len(n.Cells)-1))
			}
			n.Cells = n.Cells[:op.cell]
		case opFaninSet:
			cells = append(cells, op.cell)
			n.Cells[op.cell].Fanin[op.pin] = op.net
		case opFuncSet:
			cells = append(cells, op.cell)
			n.Cells[op.cell].Func = op.fn
		case opInitSet:
			cells = append(cells, op.cell)
			n.Cells[op.cell].Init = op.init
		case opCellRemoved:
			cells = append(cells, op.cell)
			c := &n.Cells[op.cell]
			c.Dead = false
			n.cellByName[op.name] = op.cell
			if op.hadDriver {
				n.Nets[c.Out].Driver = op.cell
			}
		case opNetRemoved:
			nets = append(nets, op.net)
			n.Nets[op.net].Dead = false
			n.netByName[op.name] = op.net
		}
	}
	n.journal = n.journal[:mark]
	return cells, nets
}

func (n *Netlist) record(op journalOp) {
	if n.journaling {
		n.journal = append(n.journal, op)
	}
}

// SetFunc replaces a LUT's logic function (journaled). The cover is
// cloned on write, so callers may keep mutating their copy.
func (n *Netlist) SetFunc(cell CellID, f logic.Cover) error {
	if !n.validCell(cell) {
		return fmt.Errorf("netlist: SetFunc: invalid cell %d", cell)
	}
	c := &n.Cells[cell]
	if c.Kind != KindLUT {
		return fmt.Errorf("netlist: SetFunc: cell %q is not a LUT", c.Name)
	}
	if f.N != len(c.Fanin) {
		return fmt.Errorf("netlist: SetFunc: cover width %d != fanin count %d", f.N, len(c.Fanin))
	}
	n.record(journalOp{kind: opFuncSet, cell: cell, fn: c.Func})
	c.Func = f.Clone()
	return nil
}

// SetInit sets a DFF's power-on value (journaled).
func (n *Netlist) SetInit(cell CellID, init uint8) error {
	if !n.validCell(cell) {
		return fmt.Errorf("netlist: SetInit: invalid cell %d", cell)
	}
	c := &n.Cells[cell]
	if c.Kind != KindDFF {
		return fmt.Errorf("netlist: SetInit: cell %q is not a DFF", c.Name)
	}
	if init > 1 {
		return fmt.Errorf("netlist: SetInit: init %d not 0/1", init)
	}
	n.record(journalOp{kind: opInitSet, cell: cell, init: c.Init})
	c.Init = init
	return nil
}

// SwapFanin exchanges two fanin pins of a cell (journaled as two rewires).
func (n *Netlist) SwapFanin(cell CellID, a, b int) error {
	if !n.validCell(cell) {
		return fmt.Errorf("netlist: SwapFanin: invalid cell %d", cell)
	}
	c := &n.Cells[cell]
	if a < 0 || b < 0 || a >= len(c.Fanin) || b >= len(c.Fanin) {
		return fmt.Errorf("netlist: SwapFanin: cell %q has no pins %d,%d", c.Name, a, b)
	}
	if a == b {
		return nil
	}
	n.record(journalOp{kind: opFaninSet, cell: cell, pin: a, net: c.Fanin[a]})
	n.record(journalOp{kind: opFaninSet, cell: cell, pin: b, net: c.Fanin[b]})
	c.Fanin[a], c.Fanin[b] = c.Fanin[b], c.Fanin[a]
	return nil
}
