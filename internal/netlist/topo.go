package netlist

import "fmt"

// TopoOrder returns the live cells in a combinational evaluation order:
// every LUT appears after the LUT drivers of its fanins. DFFs appear at the
// end of the order (they sample already-computed values and act as sources
// for the next cycle). An error is returned when the combinational logic
// contains a cycle, naming one cell on it.
func (n *Netlist) TopoOrder() ([]CellID, error) {
	// Dependencies: LUT cell -> LUT driver of each fanin net. DFF outputs
	// and PIs are sequential/primary sources and impose no ordering.
	indeg := make([]int, len(n.Cells))
	succ := make([][]CellID, len(n.Cells))
	var luts int
	for ci := range n.Cells {
		c := &n.Cells[ci]
		if c.Dead || c.Kind != KindLUT {
			continue
		}
		luts++
		for _, f := range c.Fanin {
			d := n.Nets[f].Driver
			if d != NilCell && !n.Cells[d].Dead && n.Cells[d].Kind == KindLUT {
				succ[d] = append(succ[d], CellID(ci))
				indeg[ci]++
			}
		}
	}
	order := make([]CellID, 0, n.NumLiveCells())
	queue := make([]CellID, 0, luts)
	for ci := range n.Cells {
		c := &n.Cells[ci]
		if !c.Dead && c.Kind == KindLUT && indeg[ci] == 0 {
			queue = append(queue, CellID(ci))
		}
	}
	done := 0
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		done++
		for _, s := range succ[id] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if done != luts {
		for ci := range n.Cells {
			c := &n.Cells[ci]
			if !c.Dead && c.Kind == KindLUT && indeg[ci] > 0 {
				return nil, fmt.Errorf("netlist: combinational cycle through cell %q", c.Name)
			}
		}
		return nil, fmt.Errorf("netlist: combinational cycle")
	}
	for ci := range n.Cells {
		if !n.Cells[ci].Dead && n.Cells[ci].Kind == KindDFF {
			order = append(order, CellID(ci))
		}
	}
	return order, nil
}

// Levels returns the combinational depth of each live LUT cell (sources at
// level 1) and the maximum level. DFF cells have level 0.
func (n *Netlist) Levels() (map[CellID]int, int, error) {
	order, err := n.TopoOrder()
	if err != nil {
		return nil, 0, err
	}
	levels := make(map[CellID]int, len(order))
	max := 0
	for _, id := range order {
		c := &n.Cells[id]
		if c.Kind != KindLUT {
			levels[id] = 0
			continue
		}
		lvl := 1
		for _, f := range c.Fanin {
			d := n.Nets[f].Driver
			if d != NilCell && n.Cells[d].Kind == KindLUT {
				if l := levels[d] + 1; l > lvl {
					lvl = l
				}
			}
		}
		levels[id] = lvl
		if lvl > max {
			max = lvl
		}
	}
	return levels, max, nil
}

// TransitiveFanin returns the set of live cells in the combinational and
// sequential fan-in cone of the given nets (crossing DFF boundaries when
// through is true).
func (n *Netlist) TransitiveFanin(roots []NetID, through bool) map[CellID]bool {
	seen := make(map[CellID]bool)
	stack := make([]NetID, 0, len(roots))
	stack = append(stack, roots...)
	visited := make(map[NetID]bool)
	for len(stack) > 0 {
		net := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[net] {
			continue
		}
		visited[net] = true
		d := n.Nets[net].Driver
		if d == NilCell || n.Cells[d].Dead {
			continue
		}
		if seen[d] {
			continue
		}
		seen[d] = true
		if n.Cells[d].Kind == KindDFF && !through {
			continue
		}
		stack = append(stack, n.Cells[d].Fanin...)
	}
	return seen
}

// TransitiveFanout returns the set of live cells reachable forward from the
// given nets (crossing DFF boundaries when through is true).
func (n *Netlist) TransitiveFanout(roots []NetID, through bool) map[CellID]bool {
	fan := n.Fanouts()
	seen := make(map[CellID]bool)
	stack := append([]NetID(nil), roots...)
	visited := make(map[NetID]bool)
	for len(stack) > 0 {
		net := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[net] {
			continue
		}
		visited[net] = true
		for _, s := range fan[net] {
			if n.Cells[s.Cell].Dead || seen[s.Cell] {
				continue
			}
			seen[s.Cell] = true
			if n.Cells[s.Cell].Kind == KindDFF && !through {
				continue
			}
			stack = append(stack, n.Cells[s.Cell].Out)
		}
	}
	return seen
}
