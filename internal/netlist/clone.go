package netlist

import (
	"fmt"
	"sort"
)

// Clone returns a deep copy of the netlist, preserving IDs (including
// tombstones).
func (n *Netlist) Clone() *Netlist {
	out := &Netlist{
		Name:       n.Name,
		Cells:      make([]Cell, len(n.Cells)),
		Nets:       make([]Net, len(n.Nets)),
		PIs:        append([]NetID(nil), n.PIs...),
		POs:        append([]NetID(nil), n.POs...),
		netByName:  make(map[string]NetID, len(n.netByName)),
		cellByName: make(map[string]CellID, len(n.cellByName)),
	}
	for i, c := range n.Cells {
		cc := c
		cc.Fanin = append([]NetID(nil), c.Fanin...)
		cc.Func = c.Func.Clone()
		out.Cells[i] = cc
	}
	copy(out.Nets, n.Nets)
	for k, v := range n.netByName {
		out.netByName[k] = v
	}
	for k, v := range n.cellByName {
		out.cellByName[k] = v
	}
	return out
}

// Compact rebuilds the netlist without tombstones. It returns the new
// netlist along with old→new cell and net ID maps (dead entries map to
// NilCell/NilNet).
func (n *Netlist) Compact() (*Netlist, []CellID, []NetID) {
	netMap := make([]NetID, len(n.Nets))
	cellMap := make([]CellID, len(n.Cells))
	out := New(n.Name)
	for i := range netMap {
		netMap[i] = NilNet
	}
	for i := range cellMap {
		cellMap[i] = NilCell
	}
	for ni := range n.Nets {
		if n.Nets[ni].Dead {
			continue
		}
		netMap[ni] = out.AddNet(n.Nets[ni].Name)
	}
	for ci := range n.Cells {
		c := &n.Cells[ci]
		if c.Dead {
			continue
		}
		fanin := make([]NetID, len(c.Fanin))
		for i, f := range c.Fanin {
			fanin[i] = netMap[f]
		}
		var id CellID
		var err error
		switch c.Kind {
		case KindLUT:
			id, err = out.AddLUT(c.Name, c.Func, fanin, netMap[c.Out])
		case KindDFF:
			id, err = out.AddDFF(c.Name, fanin[0], netMap[c.Out], c.Init)
		}
		if err != nil {
			panic(fmt.Sprintf("netlist: Compact rebuilt an invalid cell: %v", err))
		}
		cellMap[ci] = id
	}
	for _, pi := range n.PIs {
		if netMap[pi] != NilNet {
			// AddNet already created it undriven; just register.
			out.PIs = append(out.PIs, netMap[pi])
		}
	}
	for _, po := range n.POs {
		if netMap[po] != NilNet {
			out.POs = append(out.POs, netMap[po])
		}
	}
	return out, cellMap, netMap
}

// SweepDead removes cells whose outputs feed nothing (transitively),
// preserving POs and DFFs that feed anything live. It returns the number of
// cells removed.
func (n *Netlist) SweepDead() int {
	removed := 0
	for {
		fan := n.Fanouts()
		isPO := make(map[NetID]bool, len(n.POs))
		for _, po := range n.POs {
			isPO[po] = true
		}
		any := false
		for ci := range n.Cells {
			c := &n.Cells[ci]
			if c.Dead {
				continue
			}
			if len(fan[c.Out]) == 0 && !isPO[c.Out] {
				if err := n.RemoveCell(CellID(ci)); err == nil {
					removed++
					any = true
				}
			}
		}
		if !any {
			return removed
		}
	}
}

// Stats summarizes a netlist.
type Stats struct {
	LUTs, DFFs, Nets, PIs, POs int
	MaxFanin                   int
	Depth                      int
}

// Stats computes summary statistics; Depth is 0 when the network has a
// combinational cycle.
func (n *Netlist) Stats() Stats {
	var s Stats
	for ci := range n.Cells {
		c := &n.Cells[ci]
		if c.Dead {
			continue
		}
		switch c.Kind {
		case KindLUT:
			s.LUTs++
		case KindDFF:
			s.DFFs++
		}
		if len(c.Fanin) > s.MaxFanin {
			s.MaxFanin = len(c.Fanin)
		}
	}
	s.Nets = n.NumLiveNets()
	s.PIs = len(n.PIs)
	s.POs = len(n.POs)
	if _, d, err := n.Levels(); err == nil {
		s.Depth = d
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("luts=%d dffs=%d nets=%d pis=%d pos=%d maxfanin=%d depth=%d",
		s.LUTs, s.DFFs, s.Nets, s.PIs, s.POs, s.MaxFanin, s.Depth)
}

// SortedPINames returns PI names in deterministic order; used by the
// simulator and equivalence checks to match designs by name.
func (n *Netlist) SortedPINames() []string {
	names := make([]string, len(n.PIs))
	for i, pi := range n.PIs {
		names[i] = n.Nets[pi].Name
	}
	sort.Strings(names)
	return names
}

// SortedPONames returns PO names in deterministic order.
func (n *Netlist) SortedPONames() []string {
	names := make([]string, len(n.POs))
	for i, po := range n.POs {
		names[i] = n.Nets[po].Name
	}
	sort.Strings(names)
	return names
}
