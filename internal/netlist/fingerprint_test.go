package netlist

import (
	"testing"

	"fpgadbg/internal/logic"
)

func fpTestDesign() *Netlist {
	nl := New("fp")
	a := nl.AddPI("a")
	b := nl.AddPI("b")
	x := nl.AddNet("x")
	q := nl.AddNet("q")
	nl.MustAddLUT("and", logic.AndN(2), []NetID{a, b}, x)
	nl.MustAddDFF("ff", x, q, 0)
	nl.MarkPO(q)
	return nl
}

func TestFingerprintStable(t *testing.T) {
	a := fpTestDesign()
	b := fpTestDesign()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("identical construction hashed differently: %s vs %s",
			a.Fingerprint(), b.Fingerprint())
	}
	if got := a.Clone().Fingerprint(); got != a.Fingerprint() {
		t.Fatalf("clone changed fingerprint: %s vs %s", got, a.Fingerprint())
	}
	// Repeated calls are stable.
	if a.Fingerprint() != a.Fingerprint() {
		t.Fatal("fingerprint is not deterministic across calls")
	}
}

func TestFingerprintSensitive(t *testing.T) {
	base := fpTestDesign().Fingerprint()
	mutations := map[string]func(nl *Netlist){
		"function": func(nl *Netlist) {
			id, _ := nl.CellByName("and")
			nl.Cells[id].Func = logic.OrN(2)
		},
		"init": func(nl *Netlist) {
			id, _ := nl.CellByName("ff")
			nl.Cells[id].Init = 1
		},
		"wiring": func(nl *Netlist) {
			id, _ := nl.CellByName("and")
			b, _ := nl.NetByName("b")
			if err := nl.SetFanin(id, 0, b); err != nil {
				panic(err)
			}
		},
		"new cell": func(nl *Netlist) {
			a, _ := nl.NetByName("a")
			nl.MustAddLUT("inv", logic.NotN(), []NetID{a}, nl.AddNet("y"))
		},
	}
	for name, mutate := range mutations {
		nl := fpTestDesign()
		mutate(nl)
		if nl.Fingerprint() == base {
			t.Errorf("%s mutation did not change the fingerprint", name)
		}
	}
}

func TestFingerprintIgnoresTombstones(t *testing.T) {
	nl := fpTestDesign()
	a, _ := nl.NetByName("a")
	extraOut := nl.AddNet("extra_out")
	extra := nl.MustAddLUT("extra", logic.NotN(), []NetID{a}, extraOut)
	withExtra := nl.Fingerprint()
	if err := nl.RemoveCell(extra); err != nil {
		t.Fatal(err)
	}
	if err := nl.RemoveNet(extraOut); err != nil {
		t.Fatal(err)
	}
	if got := nl.Fingerprint(); got != fpTestDesign().Fingerprint() {
		t.Fatalf("tombstoned cell still contributes: %s", got)
	}
	if withExtra == fpTestDesign().Fingerprint() {
		t.Fatal("live extra cell did not contribute")
	}
}
