package netlist

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Fingerprint returns a stable content hash of the netlist: a hex-encoded
// SHA-256 over every live cell (name, kind, init, function cubes, fanin
// net names), every live net name, and the PI/PO sets. Two netlists built
// the same way hash identically regardless of tombstones left behind by
// prior edits, so the fingerprint is a content address — the campaign
// service keys its artifact cache (mapped netlists, compiled simulators,
// layouts, golden traces) on it. Logically equivalent but structurally
// different designs may hash differently; for a cache key that only costs
// a miss, never a wrong hit.
func (n *Netlist) Fingerprint() string {
	h := sha256.New()
	var scratch [8]byte
	wInt := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		h.Write(scratch[:])
	}
	wStr := func(s string) {
		wInt(uint64(len(s)))
		h.Write([]byte(s))
	}
	wStr(n.Name)
	for ci := range n.Cells {
		c := &n.Cells[ci]
		if c.Dead {
			continue
		}
		wStr(c.Name)
		wInt(uint64(c.Kind))
		wInt(uint64(c.Init))
		wInt(uint64(c.Func.N))
		wInt(uint64(len(c.Func.Cubes)))
		for _, cu := range c.Func.Cubes {
			wInt(cu.Mask)
			wInt(cu.Val)
		}
		wInt(uint64(len(c.Fanin)))
		for _, f := range c.Fanin {
			wStr(n.Nets[f].Name)
		}
		wStr(n.Nets[c.Out].Name)
	}
	wInt(uint64(len(n.PIs)))
	for _, name := range n.SortedPINames() {
		wStr(name)
	}
	wInt(uint64(len(n.POs)))
	for _, name := range n.SortedPONames() {
		wStr(name)
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}
