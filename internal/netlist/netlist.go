package netlist

import (
	"fmt"

	"fpgadbg/internal/logic"
)

// CellID identifies a cell within one Netlist.
type CellID int32

// NetID identifies a net within one Netlist.
type NetID int32

// NilCell and NilNet are sentinel "no such object" values.
const (
	NilCell CellID = -1
	NilNet  NetID  = -1
)

// CellKind distinguishes the two primitive cell types.
type CellKind uint8

const (
	// KindLUT is a combinational lookup-table cell of arbitrary width
	// before technology mapping and width ≤ 4 after.
	KindLUT CellKind = iota
	// KindDFF is a D flip-flop clocked by the implicit global clock.
	KindDFF
)

func (k CellKind) String() string {
	switch k {
	case KindLUT:
		return "LUT"
	case KindDFF:
		return "DFF"
	default:
		return fmt.Sprintf("CellKind(%d)", uint8(k))
	}
}

// Cell is a LUT or DFF instance.
type Cell struct {
	Name  string
	Kind  CellKind
	Fanin []NetID
	Out   NetID
	// Func is the LUT function over len(Fanin) variables (variable i =
	// pin i). Unused for DFFs.
	Func logic.Cover
	// Init is the DFF power-on value (0 or 1). Unused for LUTs.
	Init uint8
	// Dead marks a tombstoned cell.
	Dead bool
}

// Net is a single-driver signal.
type Net struct {
	Name   string
	Driver CellID // NilCell when undriven (primary input or dangling)
	Dead   bool
}

// Sink is one fanin connection of a cell.
type Sink struct {
	Cell CellID
	Pin  int
}

// Netlist is a flat LUT/DFF network.
type Netlist struct {
	Name  string
	Cells []Cell
	Nets  []Net
	PIs   []NetID
	POs   []NetID

	netByName  map[string]NetID
	cellByName map[string]CellID

	// journal is the undo log recorded while journaling is on; see
	// journal.go. Clones start with an empty, disabled journal.
	journal    []journalOp
	journaling bool
}

// New returns an empty netlist.
func New(name string) *Netlist {
	return &Netlist{
		Name:       name,
		netByName:  make(map[string]NetID),
		cellByName: make(map[string]CellID),
	}
}

// NumLiveCells counts non-tombstoned cells.
func (n *Netlist) NumLiveCells() int {
	c := 0
	for i := range n.Cells {
		if !n.Cells[i].Dead {
			c++
		}
	}
	return c
}

// NumLiveNets counts non-tombstoned nets.
func (n *Netlist) NumLiveNets() int {
	c := 0
	for i := range n.Nets {
		if !n.Nets[i].Dead {
			c++
		}
	}
	return c
}

// uniqueNetName returns name, disambiguated if already taken.
func (n *Netlist) uniqueNetName(name string) string {
	if name == "" {
		name = fmt.Sprintf("n%d", len(n.Nets))
	}
	if _, taken := n.netByName[name]; !taken {
		return name
	}
	for i := 1; ; i++ {
		cand := fmt.Sprintf("%s$%d", name, i)
		if _, taken := n.netByName[cand]; !taken {
			return cand
		}
	}
}

func (n *Netlist) uniqueCellName(name string) string {
	if name == "" {
		name = fmt.Sprintf("c%d", len(n.Cells))
	}
	if _, taken := n.cellByName[name]; !taken {
		return name
	}
	for i := 1; ; i++ {
		cand := fmt.Sprintf("%s$%d", name, i)
		if _, taken := n.cellByName[cand]; !taken {
			return cand
		}
	}
}

// AddNet creates a new undriven net. An empty name is auto-generated;
// duplicate names are disambiguated with a $k suffix.
func (n *Netlist) AddNet(name string) NetID {
	name = n.uniqueNetName(name)
	id := NetID(len(n.Nets))
	n.Nets = append(n.Nets, Net{Name: name, Driver: NilCell})
	n.netByName[name] = id
	n.record(journalOp{kind: opNetAdded, net: id, name: name})
	return id
}

// AddPI creates a new net and registers it as a primary input.
func (n *Netlist) AddPI(name string) NetID {
	id := n.AddNet(name)
	n.PIs = append(n.PIs, id)
	n.record(journalOp{kind: opPIAdded, net: id})
	return id
}

// MarkPO registers an existing net as a primary output. Marking the same
// net twice is an error in Check, so callers should mark once.
func (n *Netlist) MarkPO(id NetID) {
	n.POs = append(n.POs, id)
	n.record(journalOp{kind: opPOAdded, net: id})
}

// addCell validates and appends a cell.
func (n *Netlist) addCell(c Cell) (CellID, error) {
	for pin, f := range c.Fanin {
		if !n.validNet(f) {
			return NilCell, fmt.Errorf("netlist: cell %q pin %d: invalid net %d", c.Name, pin, f)
		}
	}
	if !n.validNet(c.Out) {
		return NilCell, fmt.Errorf("netlist: cell %q: invalid output net %d", c.Name, c.Out)
	}
	if d := n.Nets[c.Out].Driver; d != NilCell {
		return NilCell, fmt.Errorf("netlist: net %q already driven by %q", n.Nets[c.Out].Name, n.Cells[d].Name)
	}
	c.Name = n.uniqueCellName(c.Name)
	id := CellID(len(n.Cells))
	n.Cells = append(n.Cells, c)
	n.cellByName[c.Name] = id
	n.Nets[c.Out].Driver = id
	n.record(journalOp{kind: opCellAdded, cell: id, name: c.Name})
	return id, nil
}

// AddLUT creates a LUT cell computing f over the fanin nets and driving
// out. f.N must equal len(fanin).
func (n *Netlist) AddLUT(name string, f logic.Cover, fanin []NetID, out NetID) (CellID, error) {
	if f.N != len(fanin) {
		return NilCell, fmt.Errorf("netlist: LUT %q: cover width %d != fanin count %d", name, f.N, len(fanin))
	}
	return n.addCell(Cell{
		Name:  name,
		Kind:  KindLUT,
		Fanin: append([]NetID(nil), fanin...),
		Out:   out,
		Func:  f.Clone(),
	})
}

// MustAddLUT is AddLUT that panics on error; for generators whose inputs
// are statically correct.
func (n *Netlist) MustAddLUT(name string, f logic.Cover, fanin []NetID, out NetID) CellID {
	id, err := n.AddLUT(name, f, fanin, out)
	if err != nil {
		panic(err)
	}
	return id
}

// AddDFF creates a flip-flop sampling d and driving q, with power-on value
// init (0 or 1).
func (n *Netlist) AddDFF(name string, d, q NetID, init uint8) (CellID, error) {
	if init > 1 {
		return NilCell, fmt.Errorf("netlist: DFF %q: init %d not 0/1", name, init)
	}
	return n.addCell(Cell{
		Name:  name,
		Kind:  KindDFF,
		Fanin: []NetID{d},
		Out:   q,
		Init:  init,
	})
}

// MustAddDFF is AddDFF that panics on error.
func (n *Netlist) MustAddDFF(name string, d, q NetID, init uint8) CellID {
	id, err := n.AddDFF(name, d, q, init)
	if err != nil {
		panic(err)
	}
	return id
}

// AddConst creates a zero-input LUT driving out with the constant v.
func (n *Netlist) AddConst(name string, v bool, out NetID) (CellID, error) {
	return n.AddLUT(name, logic.Const(0, v), nil, out)
}

// AddBuf creates an identity LUT from in to out.
func (n *Netlist) AddBuf(name string, in, out NetID) (CellID, error) {
	return n.AddLUT(name, logic.BufN(), []NetID{in}, out)
}

// AddInv creates an inverter LUT from in to out.
func (n *Netlist) AddInv(name string, in, out NetID) (CellID, error) {
	return n.AddLUT(name, logic.NotN(), []NetID{in}, out)
}

func (n *Netlist) validNet(id NetID) bool {
	return id >= 0 && int(id) < len(n.Nets) && !n.Nets[id].Dead
}

func (n *Netlist) validCell(id CellID) bool {
	return id >= 0 && int(id) < len(n.Cells) && !n.Cells[id].Dead
}

// SetFanin rewires pin of cell to net.
func (n *Netlist) SetFanin(cell CellID, pin int, net NetID) error {
	if !n.validCell(cell) {
		return fmt.Errorf("netlist: SetFanin: invalid cell %d", cell)
	}
	c := &n.Cells[cell]
	if pin < 0 || pin >= len(c.Fanin) {
		return fmt.Errorf("netlist: SetFanin: cell %q has no pin %d", c.Name, pin)
	}
	if !n.validNet(net) {
		return fmt.Errorf("netlist: SetFanin: invalid net %d", net)
	}
	n.record(journalOp{kind: opFaninSet, cell: cell, pin: pin, net: c.Fanin[pin]})
	c.Fanin[pin] = net
	return nil
}

// RemoveCell tombstones a cell and releases its output net's driver.
func (n *Netlist) RemoveCell(id CellID) error {
	if !n.validCell(id) {
		return fmt.Errorf("netlist: RemoveCell: invalid cell %d", id)
	}
	c := &n.Cells[id]
	hadDriver := n.validNet(c.Out) && n.Nets[c.Out].Driver == id
	if hadDriver {
		n.Nets[c.Out].Driver = NilCell
	}
	delete(n.cellByName, c.Name)
	c.Dead = true
	n.record(journalOp{kind: opCellRemoved, cell: id, name: c.Name, hadDriver: hadDriver})
	return nil
}

// RemoveNet tombstones an undriven net with no remaining sinks. The caller
// is responsible for having rewired sinks first (Check enforces this).
func (n *Netlist) RemoveNet(id NetID) error {
	if !n.validNet(id) {
		return fmt.Errorf("netlist: RemoveNet: invalid net %d", id)
	}
	if n.Nets[id].Driver != NilCell {
		return fmt.Errorf("netlist: RemoveNet: net %q still driven", n.Nets[id].Name)
	}
	for ci := range n.Cells {
		if n.Cells[ci].Dead {
			continue
		}
		for _, f := range n.Cells[ci].Fanin {
			if f == id {
				return fmt.Errorf("netlist: RemoveNet: net %q still has sinks", n.Nets[id].Name)
			}
		}
	}
	delete(n.netByName, n.Nets[id].Name)
	n.Nets[id].Dead = true
	n.record(journalOp{kind: opNetRemoved, net: id, name: n.Nets[id].Name})
	return nil
}

// Fanouts computes, for every net, the list of cell pins it feeds. Primary
// outputs are not included (consult POs).
func (n *Netlist) Fanouts() [][]Sink {
	out := make([][]Sink, len(n.Nets))
	for ci := range n.Cells {
		if n.Cells[ci].Dead {
			continue
		}
		for pin, f := range n.Cells[ci].Fanin {
			out[f] = append(out[f], Sink{Cell: CellID(ci), Pin: pin})
		}
	}
	return out
}

// NetByName resolves a net by name.
func (n *Netlist) NetByName(name string) (NetID, bool) {
	id, ok := n.netByName[name]
	return id, ok
}

// CellByName resolves a cell by name.
func (n *Netlist) CellByName(name string) (CellID, bool) {
	id, ok := n.cellByName[name]
	return id, ok
}

// NetName returns the name of a net (or a placeholder for invalid IDs).
func (n *Netlist) NetName(id NetID) string {
	if id < 0 || int(id) >= len(n.Nets) {
		return fmt.Sprintf("<net%d>", id)
	}
	return n.Nets[id].Name
}

// CellName returns the name of a cell (or a placeholder for invalid IDs).
func (n *Netlist) CellName(id CellID) string {
	if id < 0 || int(id) >= len(n.Cells) {
		return fmt.Sprintf("<cell%d>", id)
	}
	return n.Cells[id].Name
}

// IsPI reports whether the net is a primary input.
func (n *Netlist) IsPI(id NetID) bool {
	for _, pi := range n.PIs {
		if pi == id {
			return true
		}
	}
	return false
}

// IsPO reports whether the net is a primary output.
func (n *Netlist) IsPO(id NetID) bool {
	for _, po := range n.POs {
		if po == id {
			return true
		}
	}
	return false
}
