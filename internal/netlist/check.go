package netlist

import "fmt"

// Check validates the structural invariants of the netlist. It is intended
// to be cheap enough to call after every public mutation in tests:
//
//   - every live cell references live nets and its output's driver backref
//     points at it;
//   - LUT cover widths match fanin counts; DFFs have exactly one fanin;
//   - every live net's driver is a live cell that really drives it;
//   - PIs are live, undriven and unique; POs are live and unique;
//   - name indexes agree with the stored names.
func (n *Netlist) Check() error {
	for ci := range n.Cells {
		c := &n.Cells[ci]
		if c.Dead {
			continue
		}
		for pin, f := range c.Fanin {
			if !n.validNet(f) {
				return fmt.Errorf("netlist: cell %q pin %d references dead/invalid net %d", c.Name, pin, f)
			}
		}
		if !n.validNet(c.Out) {
			return fmt.Errorf("netlist: cell %q output net %d dead/invalid", c.Name, c.Out)
		}
		if n.Nets[c.Out].Driver != CellID(ci) {
			return fmt.Errorf("netlist: cell %q drives net %q but driver backref is %d", c.Name, n.Nets[c.Out].Name, n.Nets[c.Out].Driver)
		}
		switch c.Kind {
		case KindLUT:
			if c.Func.N != len(c.Fanin) {
				return fmt.Errorf("netlist: LUT %q cover width %d != fanin count %d", c.Name, c.Func.N, len(c.Fanin))
			}
		case KindDFF:
			if len(c.Fanin) != 1 {
				return fmt.Errorf("netlist: DFF %q has %d fanins", c.Name, len(c.Fanin))
			}
			if c.Init > 1 {
				return fmt.Errorf("netlist: DFF %q init %d", c.Name, c.Init)
			}
		default:
			return fmt.Errorf("netlist: cell %q has unknown kind %d", c.Name, c.Kind)
		}
		if got, ok := n.cellByName[c.Name]; !ok || got != CellID(ci) {
			return fmt.Errorf("netlist: cell name index inconsistent for %q", c.Name)
		}
	}
	for ni := range n.Nets {
		net := &n.Nets[ni]
		if net.Dead {
			continue
		}
		if net.Driver != NilCell {
			if !n.validCell(net.Driver) {
				return fmt.Errorf("netlist: net %q driven by dead/invalid cell %d", net.Name, net.Driver)
			}
			if n.Cells[net.Driver].Out != NetID(ni) {
				return fmt.Errorf("netlist: net %q driver %q does not drive it", net.Name, n.Cells[net.Driver].Name)
			}
		}
		if got, ok := n.netByName[net.Name]; !ok || got != NetID(ni) {
			return fmt.Errorf("netlist: net name index inconsistent for %q", net.Name)
		}
	}
	seenPI := make(map[NetID]bool, len(n.PIs))
	for _, pi := range n.PIs {
		if !n.validNet(pi) {
			return fmt.Errorf("netlist: PI %d dead/invalid", pi)
		}
		if n.Nets[pi].Driver != NilCell {
			return fmt.Errorf("netlist: PI %q has a driver", n.Nets[pi].Name)
		}
		if seenPI[pi] {
			return fmt.Errorf("netlist: PI %q listed twice", n.Nets[pi].Name)
		}
		seenPI[pi] = true
	}
	seenPO := make(map[NetID]bool, len(n.POs))
	for _, po := range n.POs {
		if !n.validNet(po) {
			return fmt.Errorf("netlist: PO %d dead/invalid", po)
		}
		if seenPO[po] {
			return fmt.Errorf("netlist: PO %q listed twice", n.Nets[po].Name)
		}
		seenPO[po] = true
	}
	return nil
}

// CheckDriven additionally requires every non-PI live net with sinks or PO
// status to have a driver (no floating inputs), and the combinational logic
// to be acyclic. Generators call this as their final self-check.
func (n *Netlist) CheckDriven() error {
	if err := n.Check(); err != nil {
		return err
	}
	isPI := make(map[NetID]bool, len(n.PIs))
	for _, pi := range n.PIs {
		isPI[pi] = true
	}
	fan := n.Fanouts()
	for ni := range n.Nets {
		net := &n.Nets[ni]
		if net.Dead || isPI[NetID(ni)] || net.Driver != NilCell {
			continue
		}
		if len(fan[ni]) > 0 || n.IsPO(NetID(ni)) {
			return fmt.Errorf("netlist: net %q is used but undriven", net.Name)
		}
	}
	if _, err := n.TopoOrder(); err != nil {
		return err
	}
	return nil
}
