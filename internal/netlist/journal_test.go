package netlist

import (
	"testing"

	"fpgadbg/internal/logic"
)

// journalFixture builds a small sequential netlist.
func journalFixture() (*Netlist, CellID, CellID) {
	n := New("jt")
	a := n.AddPI("a")
	b := n.AddPI("b")
	x := n.AddNet("x")
	q := n.AddNet("q")
	lut := n.MustAddLUT("g1", logic.AndN(2), []NetID{a, b}, x)
	ff := n.MustAddDFF("ff1", x, q, 0)
	n.MarkPO(q)
	return n, lut, ff
}

func TestJournalRollbackRestoresFingerprint(t *testing.T) {
	n, lut, ff := journalFixture()
	want := n.Fingerprint()
	n.SetJournaling(true)
	mark := n.JournalLen()

	// Every journaled mutation kind.
	pi := n.AddPI("extra_in")
	out := n.AddNet("extra_out")
	extra, err := n.AddLUT("g2", logic.OrN(2), []NetID{pi, n.PIs[0]}, out)
	if err != nil {
		t.Fatal(err)
	}
	n.MarkPO(out)
	if err := n.SetFanin(extra, 1, n.PIs[1]); err != nil {
		t.Fatal(err)
	}
	if err := n.SetFunc(lut, logic.NandN(2)); err != nil {
		t.Fatal(err)
	}
	if err := n.SetInit(ff, 1); err != nil {
		t.Fatal(err)
	}
	if err := n.SwapFanin(lut, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := n.RemoveCell(extra); err != nil {
		t.Fatal(err)
	}
	if err := n.RemoveNet(out); err != nil {
		t.Fatal(err)
	}
	if n.Fingerprint() == want {
		t.Fatal("mutations did not change the fingerprint")
	}

	cells, nets := n.RollbackJournal(mark)
	if len(cells) == 0 || len(nets) == 0 {
		t.Fatal("rollback reported no touched cells/nets")
	}
	if got := n.Fingerprint(); got != want {
		t.Fatalf("rollback did not restore the netlist: %s != %s", got, want)
	}
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
	if _, ok := n.CellByName("g2"); ok {
		t.Fatal("rolled-back cell still resolvable by name")
	}
	if _, ok := n.NetByName("extra_in"); ok {
		t.Fatal("rolled-back net still resolvable by name")
	}
}

func TestJournalNestedMarks(t *testing.T) {
	n, lut, _ := journalFixture()
	n.SetJournaling(true)
	outer := n.JournalLen()
	if err := n.SetFunc(lut, logic.NandN(2)); err != nil {
		t.Fatal(err)
	}
	afterOuter := n.Fingerprint()

	inner := n.JournalLen()
	if err := n.SetFunc(lut, logic.OrN(2)); err != nil {
		t.Fatal(err)
	}
	n.RollbackJournal(inner)
	if got := n.Fingerprint(); got != afterOuter {
		t.Fatal("inner rollback disturbed outer state")
	}

	// Commit of the inner segment must not break the outer rollback.
	inner2 := n.JournalLen()
	if err := n.SetFunc(lut, logic.XorN(2)); err != nil {
		t.Fatal(err)
	}
	n.TruncateJournal(inner2) // commit inner — keeps the mutation
	n.RollbackJournal(outer)
	n2, _, _ := journalFixture()
	if n.Fingerprint() != n2.Fingerprint() {
		t.Fatal("outer rollback did not restore the pristine netlist")
	}
}

func TestJournalDisabledRecordsNothing(t *testing.T) {
	n, lut, _ := journalFixture()
	if err := n.SetFunc(lut, logic.NandN(2)); err != nil {
		t.Fatal(err)
	}
	if n.JournalLen() != 0 {
		t.Fatal("journal recorded while disabled")
	}
	if n.Clone().JournalActive() {
		t.Fatal("clone inherited journaling")
	}
}

func TestJournalRemoveNetRollback(t *testing.T) {
	n := New("rm")
	a := n.AddPI("a")
	dangling := n.AddNet("dangling")
	_ = a
	want := n.Fingerprint()
	n.SetJournaling(true)
	mark := n.JournalLen()
	if err := n.RemoveNet(dangling); err != nil {
		t.Fatal(err)
	}
	n.RollbackJournal(mark)
	if n.Fingerprint() != want {
		t.Fatal("RemoveNet rollback failed")
	}
	if id, ok := n.NetByName("dangling"); !ok || id != dangling {
		t.Fatal("rolled-back net not resolvable")
	}
}
