// Package netlist defines the logic-level intermediate representation used
// by the whole flow: a directed network of LUT and DFF cells connected by
// single-driver nets. The representation is index-based (CellID/NetID) so
// that placements, routings and tile assignments in other packages can be
// stored as dense side tables.
//
// Conventions:
//   - A net has at most one driver. Primary inputs are nets with no driver
//     that are listed in PIs.
//   - LUT cells hold their function as a logic.Cover whose variable i is
//     fanin pin i. A LUT with zero fanins is a constant.
//   - DFF cells have exactly one fanin (D) and drive their output (Q) on
//     the implicit global clock edge; Init gives the power-on value.
//   - Removed cells and nets are tombstoned (Dead) rather than compacted,
//     so IDs held by other packages stay valid; Compact rebuilds densely
//     and returns the remapping.
//   - Every mutator is journaled (journal.go): while a transaction is
//     open — core.Layout checkpoints enable it — the inverse of each
//     mutation is recorded, and RollbackJournal restores the netlist
//     bit-identically in O(changes). SetFunc/SetInit/SwapFanin are the
//     journaled forms of direct field writes.
package netlist
