// Package partition implements Fiduccia–Mattheyses min-cut bipartitioning.
// The main flow draws tile boundaries after placement (the paper's order);
// this partitioner supports the alternative "partition-then-place" tiling
// mode used as an ablation, and is the classic substrate for minimizing
// inter-tile interconnect.
package partition
