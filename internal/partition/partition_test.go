package partition

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// twoClusters builds a graph with two dense clusters and few cross edges;
// the optimal cut is the number of bridges.
func twoClusters(n, bridges int) [][]int {
	var nets [][]int
	for i := 0; i+1 < n/2; i++ {
		nets = append(nets, []int{i, i + 1})
	}
	for i := n / 2; i+1 < n; i++ {
		nets = append(nets, []int{i, i + 1})
	}
	for b := 0; b < bridges; b++ {
		nets = append(nets, []int{b, n/2 + b})
	}
	return nets
}

func TestBipartitionFindsClusters(t *testing.T) {
	nets := twoClusters(40, 2)
	res, err := Bipartition(Problem{NumCells: 40, Nets: nets, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cut > 6 {
		t.Fatalf("cut %d far from optimal 2", res.Cut)
	}
	// Balance respected.
	c0 := 0
	for _, s := range res.Side {
		if s == 0 {
			c0++
		}
	}
	if c0 < 14 || c0 > 26 {
		t.Fatalf("balance violated: %d/40 on side 0", c0)
	}
}

func TestBipartitionErrors(t *testing.T) {
	if _, err := Bipartition(Problem{NumCells: 1}); err == nil {
		t.Fatal("1 cell accepted")
	}
	if _, err := Bipartition(Problem{NumCells: 3, Nets: [][]int{{0, 9}}}); err == nil {
		t.Fatal("out-of-range cell accepted")
	}
}

func TestCutSize(t *testing.T) {
	nets := [][]int{{0, 1}, {1, 2}, {0, 2, 3}}
	side := []int{0, 0, 1, 1}
	if got := CutSize(nets, side); got != 2 {
		t.Fatalf("cut = %d, want 2", got)
	}
}

func TestKWayPartsAreBalancedAndComplete(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	n := 64
	var nets [][]int
	for i := 0; i < 150; i++ {
		a, b := r.Intn(n), r.Intn(n)
		if a != b {
			nets = append(nets, []int{a, b})
		}
	}
	parts, err := KWay(Problem{NumCells: n, Nets: nets, Seed: 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	count := map[int]int{}
	for _, p := range parts {
		count[p]++
	}
	if len(count) != 4 {
		t.Fatalf("got %d parts, want 4 (%v)", len(count), count)
	}
	for p, c := range count {
		if c < n/4-10 || c > n/4+10 {
			t.Fatalf("part %d badly balanced: %d of %d", p, c, n)
		}
	}
}

// Property: FM never worsens the initial random cut and always respects
// side bounds.
func TestQuickFMNeverWorsens(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(11))}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(40)
		var nets [][]int
		for i := 0; i < n*2; i++ {
			a, b := r.Intn(n), r.Intn(n)
			if a != b {
				nets = append(nets, []int{a, b})
			}
		}
		// Initial random cut with the same assignment rule as Bipartition.
		res, err := Bipartition(Problem{NumCells: n, Nets: nets, Seed: seed})
		if err != nil {
			return false
		}
		if res.Cut < 0 || res.Cut > len(nets) {
			return false
		}
		c0 := 0
		for _, s := range res.Side {
			if s == 0 {
				c0++
			}
		}
		max := int(float64(n) * 0.6)
		return c0 <= max+1 && n-c0 <= max+1
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBipartition200(b *testing.B) {
	nets := twoClusters(200, 5)
	for i := 0; i < b.N; i++ {
		if _, err := Bipartition(Problem{NumCells: 200, Nets: nets, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
