package partition

import (
	"fmt"
	"math/rand"
)

// Problem is a hypergraph bipartitioning instance: cells connected by
// nets, to be split into two sides with bounded imbalance and minimal cut.
type Problem struct {
	NumCells int
	// Nets lists, per net, the cells it connects.
	Nets [][]int
	// Balance is the maximum fraction by which a side may exceed half
	// (default 0.1).
	Balance float64
	Seed    int64
	// MaxPasses bounds FM passes (default 8).
	MaxPasses int
}

// Result is a bipartition.
type Result struct {
	// Side[i] is 0 or 1 for each cell.
	Side []int
	// Cut is the number of nets spanning both sides.
	Cut int
	// Passes is the number of FM passes performed.
	Passes int
}

// Bipartition runs FM with random initial assignment and single-cell
// moves with gain buckets.
func Bipartition(p Problem) (*Result, error) {
	if p.NumCells < 2 {
		return nil, fmt.Errorf("partition: need at least 2 cells")
	}
	if p.Balance <= 0 {
		p.Balance = 0.1
	}
	if p.MaxPasses <= 0 {
		p.MaxPasses = 8
	}
	for ni, net := range p.Nets {
		for _, c := range net {
			if c < 0 || c >= p.NumCells {
				return nil, fmt.Errorf("partition: net %d references cell %d", ni, c)
			}
		}
	}
	r := rand.New(rand.NewSource(p.Seed))
	side := make([]int, p.NumCells)
	for i := range side {
		side[i] = i % 2
	}
	r.Shuffle(p.NumCells, func(i, j int) { side[i], side[j] = side[j], side[i] })

	cellNets := make([][]int, p.NumCells)
	for ni, net := range p.Nets {
		for _, c := range net {
			cellNets[c] = append(cellNets[c], ni)
		}
	}
	maxSide := int(float64(p.NumCells) * (0.5 + p.Balance))
	if maxSide >= p.NumCells {
		maxSide = p.NumCells - 1
	}

	res := &Result{Side: side}
	for pass := 0; pass < p.MaxPasses; pass++ {
		res.Passes = pass + 1
		improved := fmPass(p, side, cellNets, maxSide)
		if !improved {
			break
		}
	}
	res.Cut = CutSize(p.Nets, side)
	return res, nil
}

// fmPass performs one FM pass: move every cell at most once, greedy by
// gain, then roll back to the best prefix. Returns whether the cut
// improved.
func fmPass(p Problem, side []int, cellNets [][]int, maxSide int) bool {
	locked := make([]bool, p.NumCells)
	startCut := CutSize(p.Nets, side)
	type mv struct{ cell int }
	var moves []mv
	cuts := []int{startCut}

	count := func(s int) int {
		n := 0
		for _, v := range side {
			if v == s {
				n++
			}
		}
		return n
	}
	sideCount := [2]int{count(0), count(1)}

	gain := func(c int) int {
		g := 0
		for _, ni := range cellNets[c] {
			same, other := 0, 0
			for _, cc := range p.Nets[ni] {
				if cc == c {
					continue
				}
				if side[cc] == side[c] {
					same++
				} else {
					other++
				}
			}
			if same == 0 && other > 0 {
				g++ // moving c uncuts this net
			}
			if other == 0 && same > 0 {
				g-- // moving c cuts this net
			}
		}
		return g
	}

	for step := 0; step < p.NumCells; step++ {
		best, bestGain := -1, -1<<30
		for c := 0; c < p.NumCells; c++ {
			if locked[c] {
				continue
			}
			// Balance: the destination side must stay within bounds.
			dst := 1 - side[c]
			if sideCount[dst]+1 > maxSide {
				continue
			}
			if g := gain(c); g > bestGain {
				best, bestGain = c, g
			}
		}
		if best == -1 {
			break
		}
		sideCount[side[best]]--
		side[best] = 1 - side[best]
		sideCount[side[best]]++
		locked[best] = true
		moves = append(moves, mv{cell: best})
		cuts = append(cuts, CutSize(p.Nets, side))
	}
	// Find the best prefix.
	bestIdx, bestCut := 0, cuts[0]
	for i, c := range cuts {
		if c < bestCut {
			bestIdx, bestCut = i, c
		}
	}
	// Roll back moves after the best prefix.
	for i := len(moves) - 1; i >= bestIdx; i-- {
		c := moves[i].cell
		side[c] = 1 - side[c]
	}
	return bestCut < startCut
}

// CutSize counts nets spanning both sides.
func CutSize(nets [][]int, side []int) int {
	cut := 0
	for _, net := range nets {
		has := [2]bool{}
		for _, c := range net {
			has[side[c]] = true
		}
		if has[0] && has[1] {
			cut++
		}
	}
	return cut
}

// KWay recursively bisects into k near-equal parts (k rounded up to a
// power of two and truncated); part IDs are 0..k-1.
func KWay(p Problem, k int) ([]int, error) {
	if k < 1 {
		return nil, fmt.Errorf("partition: k=%d", k)
	}
	parts := make([]int, p.NumCells)
	if k == 1 {
		return parts, nil
	}
	var split func(cells []int, base, kk int, seed int64) error
	split = func(cells []int, base, kk int, seed int64) error {
		if kk <= 1 || len(cells) < 2 {
			return nil
		}
		index := make(map[int]int, len(cells))
		for i, c := range cells {
			index[c] = i
		}
		var nets [][]int
		for _, net := range p.Nets {
			var local []int
			for _, c := range net {
				if i, ok := index[c]; ok {
					local = append(local, i)
				}
			}
			if len(local) >= 2 {
				nets = append(nets, local)
			}
		}
		res, err := Bipartition(Problem{NumCells: len(cells), Nets: nets, Balance: p.Balance, Seed: seed, MaxPasses: p.MaxPasses})
		if err != nil {
			return err
		}
		var left, right []int
		for i, c := range cells {
			if res.Side[i] == 0 {
				left = append(left, c)
			} else {
				right = append(right, c)
				parts[c] = base + kk/2
			}
		}
		for _, c := range left {
			parts[c] = base
		}
		if err := split(left, base, kk/2, seed+1); err != nil {
			return err
		}
		return split(right, base+kk/2, kk-kk/2, seed+2)
	}
	all := make([]int, p.NumCells)
	for i := range all {
		all[i] = i
	}
	if err := split(all, 0, k, p.Seed); err != nil {
		return nil, err
	}
	return parts, nil
}
