// Package eco implements engineering-change support — the "correct"
// third of the paper's debugging loop and the Section 5.1 hierarchy
// machinery around it:
//
//   - Diff compares two netlists cell by cell (function, wiring,
//     initialization) and is the source of Correct's repair set in
//     internal/debug: the golden model plays the role of the designer's
//     corrected HDL.
//   - Tree is the back-annotation hierarchy of Section 5.1: it traces a
//     change made at any level of the design hierarchy down to leaf
//     cells — and, through the layout, to the affected tiles, so a
//     high-level edit maps to tile-local physical work.
//   - Verify re-runs equivalence after a repair.
//
// Everything here is netlist-level; physical application of a change
// set (re-place-and-route of the touched tiles) lives in internal/core.
package eco
