package eco

import (
	"testing"

	"fpgadbg/internal/logic"
	"fpgadbg/internal/netlist"
)

func hierDesign(t testing.TB) *netlist.Netlist {
	t.Helper()
	nl := netlist.New("h")
	a := nl.AddPI("a")
	b := nl.AddPI("b")
	x := nl.AddNet("x")
	y := nl.AddNet("y")
	z := nl.AddNet("z")
	nl.MustAddLUT("top/alu/and0", logic.AndN(2), []netlist.NetID{a, b}, x)
	nl.MustAddLUT("top/alu/or0", logic.OrN(2), []netlist.NetID{a, b}, y)
	nl.MustAddLUT("top/ctl/x0", logic.XorN(2), []netlist.NetID{x, y}, z)
	nl.MarkPO(z)
	return nl
}

func TestDiffIdentical(t *testing.T) {
	a := hierDesign(t)
	b := a.Clone()
	ch := Diff(a, b)
	if len(ch.Cells) != 0 {
		t.Fatalf("identical netlists differ: %v", ch.Cells)
	}
}

func TestDiffFunctionChange(t *testing.T) {
	a := hierDesign(t)
	b := a.Clone()
	id, _ := b.CellByName("top/alu/and0")
	b.Cells[id].Func = logic.NandN(2)
	ch := Diff(a, b)
	if len(ch.Cells) != 1 || ch.Cells[0].Name != "top/alu/and0" || ch.Cells[0].Kind != "function" {
		t.Fatalf("diff = %v", ch.Cells)
	}
}

func TestDiffSemanticNotSyntactic(t *testing.T) {
	a := hierDesign(t)
	b := a.Clone()
	id, _ := b.CellByName("top/alu/and0")
	// Same function, different cover shape: x·y written redundantly.
	b.Cells[id].Func = logic.FromCubes(2,
		logic.Cube{Mask: 3, Val: 3}, logic.Cube{Mask: 3, Val: 3})
	if ch := Diff(a, b); len(ch.Cells) != 0 {
		t.Fatalf("semantically equal covers reported: %v", ch.Cells)
	}
}

func TestDiffWiringAndAddRemove(t *testing.T) {
	a := hierDesign(t)
	b := a.Clone()
	id, _ := b.CellByName("top/ctl/x0")
	aNet, _ := b.NetByName("a")
	if err := b.SetFanin(id, 0, aNet); err != nil {
		t.Fatal(err)
	}
	extra := b.AddNet("extra")
	bNet, _ := b.NetByName("b")
	b.MustAddLUT("top/new/buf", logic.BufN(), []netlist.NetID{bNet}, extra)
	rm, _ := b.CellByName("top/alu/or0")
	_ = b.RemoveCell(rm)
	ch := Diff(a, b)
	kinds := map[string]string{}
	for _, c := range ch.Cells {
		kinds[c.Name] = c.Kind
	}
	if kinds["top/ctl/x0"] != "wiring" {
		t.Fatalf("wiring change missed: %v", kinds)
	}
	if kinds["top/new/buf"] != "added" {
		t.Fatalf("added cell missed: %v", kinds)
	}
	if kinds["top/alu/or0"] != "removed" {
		t.Fatalf("removed cell missed: %v", kinds)
	}
}

func TestDiffReportsFunctionAndWiringTogether(t *testing.T) {
	a := hierDesign(t)
	b := a.Clone()
	id, _ := b.CellByName("top/ctl/x0")
	aNet, _ := b.NetByName("a")
	if err := b.SetFanin(id, 0, aNet); err != nil {
		t.Fatal(err)
	}
	b.Cells[id].Func = logic.AndN(2)
	ch := Diff(a, b)
	if len(ch.Cells) != 1 || ch.Cells[0].Name != "top/ctl/x0" || ch.Cells[0].Kind != "function+wiring" {
		t.Fatalf("want one function+wiring change, got %v", ch.Cells)
	}
}

func TestTreeStructure(t *testing.T) {
	nl := hierDesign(t)
	tr := BuildTree(nl)
	mods := tr.Modules()
	want := []string{"top", "top/alu", "top/ctl"}
	if len(mods) != len(want) {
		t.Fatalf("modules = %v", mods)
	}
	for i := range want {
		if mods[i] != want[i] {
			t.Fatalf("modules = %v, want %v", mods, want)
		}
	}
	cells, err := tr.CellsUnder("top/alu")
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("top/alu has %d cells", len(cells))
	}
	all, err := tr.CellsUnder("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("root walk found %d cells", len(all))
	}
	if _, err := tr.CellsUnder("top/nope"); err == nil {
		t.Fatal("missing module accepted")
	}
}

func TestTraceToModules(t *testing.T) {
	nl := hierDesign(t)
	tr := BuildTree(nl)
	mods := tr.TraceToModules([]string{"top/alu/and0", "top/ctl/x0"})
	if len(mods) != 2 || mods[0] != "top/alu" || mods[1] != "top/ctl" {
		t.Fatalf("trace = %v", mods)
	}
	if got := tr.ModuleOf("flatcell"); got != "" {
		t.Fatalf("flat module = %q", got)
	}
}

func TestVerifySignsOffEquivalentChange(t *testing.T) {
	a := hierDesign(t)
	b := a.Clone()
	// A cover reshaped without changing the function must verify clean.
	id, _ := b.CellByName("top/alu/and0")
	b.Cells[id].Func = logic.FromCubes(2,
		logic.Cube{Mask: 3, Val: 3}, logic.Cube{Mask: 3, Val: 3})
	mm, err := Verify(a, b, 4, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	if mm != nil {
		t.Fatalf("behaviour-preserving change failed sign-off: %v", mm)
	}
	// A real functional change must be caught.
	b.Cells[id].Func = logic.NandN(2)
	mm, err = Verify(a, b, 4, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	if mm == nil {
		t.Fatal("functional change verified clean")
	}
}
