package eco

import (
	"fmt"
	"sort"
	"strings"

	"fpgadbg/internal/netlist"
	"fpgadbg/internal/sim"
)

// CellChange describes one differing cell between two netlists.
type CellChange struct {
	Name string
	// Kind is "added" (only in the updated netlist), "removed" (only in
	// the old), "function" (same fanin, different logic), "wiring"
	// (different fanin nets), or "function+wiring" when both aspects
	// differ.
	Kind string
}

// Changes is a netlist-level diff.
type Changes struct {
	Cells []CellChange
}

// Names returns the changed cell names.
func (c Changes) Names() []string {
	out := make([]string, len(c.Cells))
	for i, ch := range c.Cells {
		out[i] = ch.Name
	}
	return out
}

// Diff compares netlists by cell name. Cells are considered equal when
// their kind, fanin net names (in order) and logic function agree.
// Functions wider than the truth-table limit fall back to syntactic cover
// comparison. A cell whose wiring and function both changed reports
// "function+wiring" — wiring no longer short-circuits function detection.
func Diff(old, updated *netlist.Netlist) Changes {
	var out Changes
	oldCells := liveCellNames(old)
	updatedCells := liveCellNames(updated)
	for name, oid := range oldCells {
		nid, ok := updatedCells[name]
		if !ok {
			out.Cells = append(out.Cells, CellChange{Name: name, Kind: "removed"})
			continue
		}
		oc, nc := &old.Cells[oid], &updated.Cells[nid]
		if oc.Kind != nc.Kind || len(oc.Fanin) != len(nc.Fanin) {
			// Different shape: pin counts (and functions over them) are not
			// comparable aspect by aspect.
			out.Cells = append(out.Cells, CellChange{Name: name, Kind: "wiring"})
			continue
		}
		wiring := false
		for i := range oc.Fanin {
			if old.NetName(oc.Fanin[i]) != updated.NetName(nc.Fanin[i]) {
				wiring = true
				break
			}
		}
		function := false
		if oc.Kind == netlist.KindLUT && !sameFunc(oc, nc) {
			function = true
		}
		if oc.Kind == netlist.KindDFF && oc.Init != nc.Init {
			function = true
		}
		switch {
		case function && wiring:
			out.Cells = append(out.Cells, CellChange{Name: name, Kind: "function+wiring"})
		case wiring:
			out.Cells = append(out.Cells, CellChange{Name: name, Kind: "wiring"})
		case function:
			out.Cells = append(out.Cells, CellChange{Name: name, Kind: "function"})
		}
	}
	for name := range updatedCells {
		if _, ok := oldCells[name]; !ok {
			out.Cells = append(out.Cells, CellChange{Name: name, Kind: "added"})
		}
	}
	sort.Slice(out.Cells, func(i, j int) bool { return out.Cells[i].Name < out.Cells[j].Name })
	return out
}

func liveCellNames(nl *netlist.Netlist) map[string]netlist.CellID {
	m := make(map[string]netlist.CellID)
	for ci := range nl.Cells {
		if !nl.Cells[ci].Dead {
			m[nl.Cells[ci].Name] = netlist.CellID(ci)
		}
	}
	return m
}

func sameFunc(a, b *netlist.Cell) bool {
	if eq, err := a.Func.Equal(b.Func); err == nil {
		return eq
	}
	// Too wide for truth tables: canonical syntactic comparison.
	ca, cb := a.Func.Canon(), b.Func.Canon()
	if len(ca.Cubes) != len(cb.Cubes) {
		return false
	}
	for i := range ca.Cubes {
		if ca.Cubes[i] != cb.Cubes[i] {
			return false
		}
	}
	return true
}

// Verify is the ECO sign-off check: it replays common random stimulus on
// the pre- and post-change netlists through the compiled simulator (names
// bound to slots once, allocation-free replay) and returns the first
// output divergence, or nil when the change preserved behaviour. The
// designs must agree on PI/PO name sets — exactly the situation after an
// in-place engineering change.
func Verify(before, after *netlist.Netlist, words, cycles int, seed int64) (*sim.Mismatch, error) {
	return sim.Equivalent(before, after, words, cycles, seed)
}

// Node is one level of the back-annotation hierarchy.
type Node struct {
	Path     string
	Children map[string]*Node
	// Cells lists the leaf cells directly under this node.
	Cells []netlist.CellID
}

// Tree is the design hierarchy recovered from hierarchical cell names
// ("mips/alu/add7" → mips → alu). Generators emit such names; flat names
// land under the root.
type Tree struct {
	Root *Node
	nl   *netlist.Netlist
}

// BuildTree indexes a netlist's hierarchy.
func BuildTree(nl *netlist.Netlist) *Tree {
	t := &Tree{Root: &Node{Path: "", Children: map[string]*Node{}}, nl: nl}
	for ci := range nl.Cells {
		c := &nl.Cells[ci]
		if c.Dead {
			continue
		}
		parts := strings.Split(c.Name, "/")
		cur := t.Root
		for _, p := range parts[:len(parts)-1] {
			next, ok := cur.Children[p]
			if !ok {
				path := p
				if cur.Path != "" {
					path = cur.Path + "/" + p
				}
				next = &Node{Path: path, Children: map[string]*Node{}}
				cur.Children[p] = next
			}
			cur = next
		}
		cur.Cells = append(cur.Cells, netlist.CellID(ci))
	}
	return t
}

// ModuleOf returns the hierarchy path of a cell ("" for flat names).
func (t *Tree) ModuleOf(name string) string {
	if i := strings.LastIndex(name, "/"); i >= 0 {
		return name[:i]
	}
	return ""
}

// CellsUnder returns every cell at or below the given module path — the
// sub-tree walk used to trace a high-level change down to leaves.
func (t *Tree) CellsUnder(path string) ([]netlist.CellID, error) {
	node := t.Root
	if path != "" {
		for _, p := range strings.Split(path, "/") {
			next, ok := node.Children[p]
			if !ok {
				return nil, fmt.Errorf("eco: no module %q", path)
			}
			node = next
		}
	}
	var out []netlist.CellID
	var walk func(n *Node)
	walk = func(n *Node) {
		out = append(out, n.Cells...)
		keys := make([]string, 0, len(n.Children))
		for k := range n.Children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			walk(n.Children[k])
		}
	}
	walk(node)
	return out, nil
}

// Modules returns all module paths in deterministic order.
func (t *Tree) Modules() []string {
	var out []string
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Path != "" {
			out = append(out, n.Path)
		}
		keys := make([]string, 0, len(n.Children))
		for k := range n.Children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			walk(n.Children[k])
		}
	}
	walk(t.Root)
	return out
}

// TraceToModules maps changed cell names to the set of modules they touch
// — the paper's "trace the debugging changes through the sub-trees of all
// the altered nodes".
func (t *Tree) TraceToModules(changed []string) []string {
	set := make(map[string]bool)
	for _, name := range changed {
		set[t.ModuleOf(name)] = true
	}
	out := make([]string, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}
