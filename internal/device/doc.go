// Package device models the target FPGA: a W×H array of CLB sites
// surrounded by a perimeter ring of IOB sites, with uniform-capacity
// routing channels between adjacent grid positions. It is a simplified
// Xilinx XC4000 — the family the paper targets — at the granularity every
// reported result uses (whole CLBs and channel segments).
package device
