package device

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSizeMeetsCapacity(t *testing.T) {
	cases := []struct {
		clbs     int
		overhead float64
	}{
		{56, 0.20}, {98, 0.20}, {235, 0.20}, {900, 0.19}, {1050, 0.20}, {1, 0.5}, {10, 0},
	}
	for _, tc := range cases {
		d := Size(tc.clbs, tc.overhead, 0)
		need := int(math.Ceil(float64(tc.clbs) * (1 + tc.overhead)))
		if d.NumCLBSites() < need {
			t.Errorf("Size(%d,%.2f) = %v too small for %d", tc.clbs, tc.overhead, d, need)
		}
		// Should not be wildly oversized: one full row of slack at most.
		if d.NumCLBSites() >= need+d.W+d.H {
			t.Errorf("Size(%d,%.2f) = %v oversized (need %d)", tc.clbs, tc.overhead, d, need)
		}
		if d.ChannelWidth != DefaultChannelWidth {
			t.Errorf("default channel width not applied")
		}
	}
}

func TestSiteClassification(t *testing.T) {
	d := Device{W: 4, H: 3, ChannelWidth: 8}
	if !d.IsCLB(XY{1, 1}) || !d.IsCLB(XY{4, 3}) {
		t.Fatal("CLB corners misclassified")
	}
	if d.IsCLB(XY{0, 1}) || d.IsCLB(XY{5, 3}) {
		t.Fatal("IOB classified as CLB")
	}
	if !d.IsIOB(XY{0, 1}) || !d.IsIOB(XY{5, 3}) || !d.IsIOB(XY{2, 0}) || !d.IsIOB(XY{2, 4}) {
		t.Fatal("perimeter not IOB")
	}
	if d.IsIOB(XY{0, 0}) || d.IsIOB(XY{5, 4}) {
		t.Fatal("corner should be unusable")
	}
	if d.IsIOB(XY{2, 2}) {
		t.Fatal("interior is not IOB")
	}
	if len(d.CLBSites()) != 12 {
		t.Fatalf("CLB sites = %d", len(d.CLBSites()))
	}
	if len(d.IOBSites()) != d.NumIOBSites() || d.NumIOBSites() != 14 {
		t.Fatalf("IOB sites = %d (want 14)", len(d.IOBSites()))
	}
	for _, p := range d.IOBSites() {
		if !d.IsIOB(p) {
			t.Fatalf("IOBSites emitted non-IOB %v", p)
		}
	}
}

func TestRectOps(t *testing.T) {
	r := Rect{1, 1, 3, 2}
	if r.Area() != 6 {
		t.Fatalf("area = %d", r.Area())
	}
	if !r.Contains(XY{3, 2}) || r.Contains(XY{4, 2}) {
		t.Fatal("contains wrong")
	}
	o := Rect{4, 1, 5, 2}
	if r.Intersects(o) {
		t.Fatal("disjoint rects intersect")
	}
	if !r.Adjacent(o) {
		t.Fatal("touching rects not adjacent")
	}
	far := Rect{6, 1, 7, 2}
	if r.Adjacent(far) {
		t.Fatal("distant rects adjacent")
	}
	u := r.Union(o)
	if u != (Rect{1, 1, 5, 2}) {
		t.Fatalf("union = %v", u)
	}
	s := RectSet{r, o}
	if s.Area() != 10 {
		t.Fatalf("set area = %d", s.Area())
	}
	if !s.Contains(XY{5, 1}) || s.Contains(XY{6, 1}) {
		t.Fatal("set contains wrong")
	}
}

func TestManhattan(t *testing.T) {
	if ManhattanDist(XY{1, 1}, XY{4, 3}) != 5 {
		t.Fatal("distance wrong")
	}
}

// Property: every in-bounds coordinate is exactly one of CLB, IOB, or
// corner.
func TestQuickPartition(t *testing.T) {
	prop := func(wRaw, hRaw uint8, xRaw, yRaw uint8) bool {
		d := Device{W: 1 + int(wRaw%20), H: 1 + int(hRaw%20), ChannelWidth: 8}
		p := XY{int(xRaw) % (d.W + 2), int(yRaw) % (d.H + 2)}
		classes := 0
		if d.IsCLB(p) {
			classes++
		}
		if d.IsIOB(p) {
			classes++
		}
		if d.IsCorner(p) {
			classes++
		}
		return classes == 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
