package device

import (
	"fmt"
	"math"
)

// XY is a grid coordinate. Interior coordinates (1..W, 1..H) are CLB
// sites; the surrounding ring (x==0, x==W+1, y==0, or y==H+1) holds IOB
// sites. Corners are unusable.
type XY struct {
	X, Y int
}

func (p XY) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// ManhattanDist is the grid distance between two coordinates.
func ManhattanDist(a, b XY) int {
	return abs(a.X-b.X) + abs(a.Y-b.Y)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Device describes one FPGA.
type Device struct {
	W, H int
	// ChannelWidth is the number of routing tracks available on each
	// channel segment between adjacent grid positions.
	ChannelWidth int
}

// DefaultChannelWidth is generous enough for the benchmark designs while
// still forcing the router to negotiate congestion in dense regions.
const DefaultChannelWidth = 12

// Size returns the smallest near-square device whose CLB capacity is at
// least ceil(numCLBs × (1+overhead)). overhead is the paper's resource
// slack knob (Table 1 uses ≈0.20).
func Size(numCLBs int, overhead float64, channelWidth int) Device {
	if channelWidth <= 0 {
		channelWidth = DefaultChannelWidth
	}
	need := int(math.Ceil(float64(numCLBs) * (1 + overhead)))
	if need < 1 {
		need = 1
	}
	w := int(math.Ceil(math.Sqrt(float64(need))))
	for w*w < need {
		w++
	}
	h := w
	// Shrink one dimension if a rectangle still fits.
	for w*(h-1) >= need {
		h--
	}
	return Device{W: w, H: h, ChannelWidth: channelWidth}
}

// NumCLBSites returns the CLB capacity.
func (d Device) NumCLBSites() int { return d.W * d.H }

// InBounds reports whether p lies on the device grid including the IOB
// ring.
func (d Device) InBounds(p XY) bool {
	return p.X >= 0 && p.X <= d.W+1 && p.Y >= 0 && p.Y <= d.H+1
}

// IsCLB reports whether p is a CLB site.
func (d Device) IsCLB(p XY) bool {
	return p.X >= 1 && p.X <= d.W && p.Y >= 1 && p.Y <= d.H
}

// IsCorner reports whether p is one of the four unusable corners.
func (d Device) IsCorner(p XY) bool {
	return (p.X == 0 || p.X == d.W+1) && (p.Y == 0 || p.Y == d.H+1)
}

// IsIOB reports whether p is an IOB site on the perimeter ring.
func (d Device) IsIOB(p XY) bool {
	if !d.InBounds(p) || d.IsCorner(p) {
		return false
	}
	return p.X == 0 || p.X == d.W+1 || p.Y == 0 || p.Y == d.H+1
}

// CLBSites lists all CLB sites in row-major order.
func (d Device) CLBSites() []XY {
	out := make([]XY, 0, d.W*d.H)
	for y := 1; y <= d.H; y++ {
		for x := 1; x <= d.W; x++ {
			out = append(out, XY{x, y})
		}
	}
	return out
}

// IOBSites lists all IOB sites clockwise from (1,0).
func (d Device) IOBSites() []XY {
	var out []XY
	for x := 1; x <= d.W; x++ {
		out = append(out, XY{x, 0})
	}
	for y := 1; y <= d.H; y++ {
		out = append(out, XY{d.W + 1, y})
	}
	for x := d.W; x >= 1; x-- {
		out = append(out, XY{x, d.H + 1})
	}
	for y := d.H; y >= 1; y-- {
		out = append(out, XY{0, y})
	}
	return out
}

// IOBsPerSite is the number of I/O blocks sharing each perimeter grid
// position (the XC4000 family pairs two IOBs per edge position, e.g. the
// XC4005's 14×14 array exposes 112 IOBs).
const IOBsPerSite = 2

// NumIOBSites returns the number of perimeter grid positions.
func (d Device) NumIOBSites() int { return 2*d.W + 2*d.H }

// IOBCapacity returns the total number of placeable I/O pads.
func (d Device) IOBCapacity() int { return IOBsPerSite * d.NumIOBSites() }

func (d Device) String() string {
	return fmt.Sprintf("xc-sim %dx%d (CLBs=%d, IOBs=%d, W_ch=%d)", d.W, d.H, d.NumCLBSites(), d.NumIOBSites(), d.ChannelWidth)
}

// Rect is an inclusive rectangle of grid coordinates, the shape of a tile.
type Rect struct {
	X0, Y0, X1, Y1 int
}

// Contains reports whether p lies inside the rectangle.
func (r Rect) Contains(p XY) bool {
	return p.X >= r.X0 && p.X <= r.X1 && p.Y >= r.Y0 && p.Y <= r.Y1
}

// Area returns the number of grid positions covered.
func (r Rect) Area() int {
	if r.X1 < r.X0 || r.Y1 < r.Y0 {
		return 0
	}
	return (r.X1 - r.X0 + 1) * (r.Y1 - r.Y0 + 1)
}

// Intersects reports whether two rectangles overlap.
func (r Rect) Intersects(o Rect) bool {
	return r.X0 <= o.X1 && o.X0 <= r.X1 && r.Y0 <= o.Y1 && o.Y0 <= r.Y1
}

// Adjacent reports whether two rectangles touch edge-to-edge (or overlap):
// the neighbor relation used when a tile borrows resources.
func (r Rect) Adjacent(o Rect) bool {
	grown := Rect{r.X0 - 1, r.Y0 - 1, r.X1 + 1, r.Y1 + 1}
	return grown.Intersects(o)
}

// Union returns the bounding box of two rectangles.
func (r Rect) Union(o Rect) Rect {
	return Rect{min(r.X0, o.X0), min(r.Y0, o.Y0), max(r.X1, o.X1), max(r.Y1, o.Y1)}
}

func (r Rect) String() string {
	return fmt.Sprintf("[%d..%d]x[%d..%d]", r.X0, r.X1, r.Y0, r.Y1)
}

// RectSet is a union of rectangles (affected tiles are generally not
// rectangular in aggregate).
type RectSet []Rect

// Contains reports whether p lies in any member rectangle.
func (s RectSet) Contains(p XY) bool {
	for _, r := range s {
		if r.Contains(p) {
			return true
		}
	}
	return false
}

// Area returns the total covered area assuming disjoint members (tiles
// never overlap).
func (s RectSet) Area() int {
	a := 0
	for _, r := range s {
		a += r.Area()
	}
	return a
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
