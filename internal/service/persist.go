package service

import (
	"bytes"
	"container/heap"
	"context"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"time"

	"fpgadbg/internal/blif"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/obs"
	"fpgadbg/internal/sim"
	"fpgadbg/internal/store"
)

// Durable campaign state. When Config.Store is set the service journals
// every campaign lifecycle transition (submit, start, done/failed/
// canceled) as one fsynced record, spills rebuildable artifacts (mapped
// golden netlists as BLIF, golden traces as gob) into the store's
// content-addressed blob area, and Open replays the journal on startup:
// terminal campaigns come back queryable, queued and running campaigns
// are requeued and re-executed. Because every Result field that enters
// Digest is deterministic for a Spec, a requeued campaign's digest is
// bit-identical to what the interrupted run would have produced — the
// crash tests in persist_test.go hold the service to that.
//
// Shutdown semantics: a graceful Close cancels running campaigns (the
// cancellation is journaled, so they stay canceled), while campaigns
// still queued are deliberately NOT journaled as canceled — a restart
// picks them up again, which is what a durable queue owes its clients.

// Open starts a service like New and, when cfg.Store is set, restores
// journaled state from it first. The service takes ownership of the
// store: Close closes it after the workers drain.
func Open(cfg Config) (*Service, error) {
	s := newService(cfg)
	if s.store != nil {
		if err := s.restore(); err != nil {
			return nil, fmt.Errorf("service: restore: %w", err)
		}
	}
	s.startWorkers()
	return s, nil
}

// journal appends one lifecycle record, stamping the wall clock. Append
// errors must not take down a running campaign, so they are counted and
// surfaced through Stats instead of propagated. The counter is atomic —
// journal must stay safe to call whether or not the caller holds s.mu,
// and on whichever side of it the failure happens.
func (s *Service) journal(rec store.Record) {
	if s.store == nil {
		return
	}
	rec.TimeUs = time.Now().UnixMicro()
	if _, err := s.store.Append(rec); err != nil {
		s.journalErrs.Add(1)
	}
}

// journalSubmit records a freshly validated submission; the defaulted
// spec is marshalled so recovery re-runs exactly what was accepted.
func (s *Service) journalSubmit(id string, spec Spec) {
	if s.store == nil {
		return
	}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		s.journalErrs.Add(1)
		return
	}
	s.journal(store.Record{Kind: store.KindSubmit, ID: id, Spec: specJSON})
}

// journalFinish records a campaign's terminal transition.
func (s *Service) journalFinish(id string, res *Result, err error) {
	if s.store == nil {
		return
	}
	switch {
	case err == nil:
		resJSON, merr := json.Marshal(res)
		if merr != nil {
			s.journalErrs.Add(1)
			return
		}
		s.journal(store.Record{Kind: store.KindDone, ID: id, Result: resJSON})
	case errors.Is(err, context.Canceled):
		s.journal(store.Record{Kind: store.KindCanceled, ID: id, Error: err.Error()})
	default:
		s.journal(store.Record{Kind: store.KindFailed, ID: id, Error: err.Error()})
	}
}

// parseCampaignSeq recovers the submission sequence from a "c%06d" ID so
// restored campaigns keep their FIFO position and new submissions resume
// the ID chain past them.
func parseCampaignSeq(id string) int64 {
	if len(id) < 2 || id[0] != 'c' {
		return 0
	}
	n, err := strconv.ParseInt(id[1:], 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// restore replays the journal: terminal campaigns become queryable
// records, queued/running campaigns are requeued (with a journaled
// requeue record and a "resume" queue-wait span replacing the usual
// "queue" one). Runs before the workers start, so no locking is needed.
func (s *Service) restore() error {
	begin := time.Now()
	rec, err := s.store.Recover()
	if err != nil {
		return err
	}
	s.blobIdx = rec.Blobs
	var maxSeq int64
	for _, cs := range rec.Campaigns {
		var spec Spec
		if err := json.Unmarshal(cs.Spec, &spec); err != nil {
			s.journalErrs.Add(1) // unreadable spec: the record is lost, not the daemon
			continue
		}
		seq := parseCampaignSeq(cs.ID)
		if seq > maxSeq {
			maxSeq = seq
		}
		c := &campaign{
			id:     cs.ID,
			spec:   spec,
			seq:    seq,
			subs:   make(map[chan Event]struct{}),
			done:   make(chan struct{}),
			queued: time.UnixMicro(cs.SubmitUs),
		}
		s.byKind[spec.Kind]++
		s.byID[c.id] = c
		s.order = append(s.order, c.id)
		switch cs.State {
		case "done":
			c.state = StateDone
			if len(cs.Result) > 0 {
				var r Result
				if err := json.Unmarshal(cs.Result, &r); err == nil {
					c.result = &r
				}
			}
			c.finished = time.UnixMicro(cs.FinishUs)
			c.events = append(c.events, Event{Seq: 1, Stage: "recover", Msg: "restored from journal (done)"})
			close(c.done)
			s.done++
		case "failed":
			c.state = StateFailed
			c.err = errors.New(cs.Error)
			c.finished = time.UnixMicro(cs.FinishUs)
			c.events = append(c.events, Event{Seq: 1, Stage: "recover", Msg: "restored from journal (failed)"})
			close(c.done)
			s.failed++
		case "canceled":
			c.state = StateCanceled
			c.err = context.Canceled
			c.finished = time.UnixMicro(cs.FinishUs)
			c.events = append(c.events, Event{Seq: 1, Stage: "recover", Msg: "restored from journal (canceled)"})
			close(c.done)
			s.cancels++
		default: // queued or running: back into the queue
			c.state = StateQueued
			if s.reg != nil {
				c.trace = obs.NewTrace(c.id, spec.Design, spec.Kind, s.reg)
				c.qspan = c.trace.Start(obs.StageResume)
			}
			c.events = append(c.events, Event{Seq: 1, Stage: "recover",
				Msg: fmt.Sprintf("requeued after restart (was %s)", cs.State)})
			heap.Push(&s.queue, queueItem{c: c})
			s.reg.Gauge("queue_depth").Add(1)
			s.recovered++
			s.journal(store.Record{Kind: store.KindRequeue, ID: c.id})
		}
	}
	if maxSeq > s.nextSeq {
		s.nextSeq = maxSeq
	}
	s.reg.Histogram("stage." + obs.StageRecover).Observe(time.Since(begin))
	return nil
}

// ------------------------------------------------------------ blob spill
//
// Two artifact classes are worth persisting: the mapped golden netlist
// of a design (skips synth+techmap on resume) and golden replay traces
// (skip whole golden simulations). Both are pure functions of their key,
// so a spill is an optimization only — every load failure falls back to
// rebuilding, and a netlist spill is journaled only after a write-time
// round-trip check proves the BLIF text reparses to the bit-identical
// structure (same fingerprint, same cell indexing). That check is what
// keeps resumed campaigns digest-identical to cold ones.

func netlistBlobID(design string) string { return "netlist/" + design }

func (s *Service) blobRef(id string) (store.BlobRef, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ref, ok := s.blobIdx[id]
	return ref, ok
}

func (s *Service) noteSpill(hit bool) {
	s.mu.Lock()
	if hit {
		s.spillHits++
	} else {
		s.spillMisses++
	}
	s.mu.Unlock()
}

func (s *Service) putSpill(id, kind string, data []byte) {
	dig, err := s.store.PutBlob(kind, data)
	if err != nil {
		s.journalErrs.Add(1)
		return
	}
	s.mu.Lock()
	s.blobIdx[id] = store.BlobRef{Kind: kind, Digest: dig}
	s.mu.Unlock()
	s.journal(store.Record{Kind: store.KindBlob, ID: id, Blob: dig, BlobKind: kind})
}

// spillNetlist persists a mapped netlist as BLIF — but only when the
// text provably round-trips: reparsing must yield the same fingerprint
// over the same cell indices, or a resumed campaign could inject its
// design error into a structurally shifted netlist and drift the digest.
func (s *Service) spillNetlist(design string, nl *netlist.Netlist) {
	if s.store == nil {
		return
	}
	text, err := blif.ToString(nl)
	if err != nil {
		return
	}
	back, err := blif.ParseString(text)
	if err != nil || back.Fingerprint() != nl.Fingerprint() || len(back.Cells) != len(nl.Cells) {
		return // not round-trip stable (e.g. names BLIF cannot carry): skip, never mis-spill
	}
	s.putSpill(netlistBlobID(design), "netlist", []byte(text))
}

// loadSpilledNetlist rebuilds a mapped netlist from its spilled BLIF.
// Integrity is layered: the store re-hashes blob content, and the spill
// was journaled only after the round-trip check above.
func (s *Service) loadSpilledNetlist(design string) (*netlist.Netlist, bool) {
	if s.store == nil {
		return nil, false
	}
	ref, ok := s.blobRef(netlistBlobID(design))
	if !ok {
		s.noteSpill(false)
		return nil, false
	}
	data, err := s.store.GetBlob(ref.Kind, ref.Digest)
	if err != nil {
		s.noteSpill(false)
		return nil, false
	}
	nl, err := blif.ParseString(string(data))
	if err != nil {
		s.noteSpill(false)
		return nil, false
	}
	s.noteSpill(true)
	return nl, true
}

// spillTrace persists one golden replay trace as gob (sim.Trace is flat
// exported data, so gob round-trips it exactly).
func (s *Service) spillTrace(key string, tr *sim.Trace) {
	if s.store == nil {
		return
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(tr); err != nil {
		return
	}
	s.putSpill(key, "trace", buf.Bytes())
}

func (s *Service) loadSpilledTrace(key string) (*sim.Trace, bool) {
	if s.store == nil {
		return nil, false
	}
	ref, ok := s.blobRef(key)
	if !ok {
		s.noteSpill(false)
		return nil, false
	}
	data, err := s.store.GetBlob(ref.Kind, ref.Digest)
	if err != nil {
		s.noteSpill(false)
		return nil, false
	}
	var tr sim.Trace
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&tr); err != nil {
		s.noteSpill(false)
		return nil, false
	}
	s.noteSpill(true)
	return &tr, true
}
