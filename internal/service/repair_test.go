package service

import (
	"context"
	"testing"
	"time"
)

// repairSpec is the smallest repair campaign the test designs support.
func repairSpec(faultSeed int64) Spec {
	return Spec{
		Design: "9sym", Kind: KindRepair, FaultSeed: faultSeed,
		PlaceEffort: 0.3, TileFrac: 0.25, Overhead: 0.35, Words: 4, Cycles: 2,
	}
}

// TestRepairCampaign submits repair campaigns until one repairs through
// the candidate search, then pins the search statistics, determinism and
// artifact caching of a resubmission.
func TestRepairCampaign(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	for seed := int64(1); seed <= 8; seed++ {
		id, err := svc.Submit(repairSpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		res, err := svc.Wait(ctx, id)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Detected {
			continue // error not excited; nothing to assert
		}
		if res.Repaired == 0 {
			// Wiring-shaped injections legitimately fall back.
			if !res.RepairFallback {
				t.Fatalf("seed %d: neither repaired nor fallback: %+v", seed, res)
			}
			continue
		}
		if res.RepairKind == "" || res.Candidates < 1 || res.Survivors < 1 || res.CandidateBatches < 1 {
			t.Fatalf("seed %d: missing search stats: %+v", seed, res)
		}
		if !res.ECOVerified || !res.Clean {
			t.Fatalf("seed %d: repair applied but not verified: %+v", seed, res)
		}
		if res.DictResolved != 1 {
			t.Fatalf("seed %d: repair campaign should dictionary-resolve 9sym single faults: %+v", seed, res)
		}

		// Determinism + caching: an identical resubmission must match the
		// digest and hit the candidate-program cache.
		id2, err := svc.Submit(repairSpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		res2, err := svc.Wait(ctx, id2)
		if err != nil {
			t.Fatal(err)
		}
		if res2.Digest != res.Digest {
			t.Fatalf("repair campaign not deterministic: %s vs %s", res.Digest, res2.Digest)
		}
		if res2.CacheHits <= res.CacheHits {
			t.Fatalf("warm resubmission should hit more artifacts: %d vs %d", res2.CacheHits, res.CacheHits)
		}
		return
	}
	t.Skip("no seed produced a candidate-search repair")
}

// TestDigestCoversDictAndRepairAccounting pins that DictResolved and the
// repair-search fields participate in the result digest, so clients can
// rely on digest equality to mean identical accounting.
func TestDigestCoversDictAndRepairAccounting(t *testing.T) {
	base := &Result{
		Design: "9sym", Injected: "x", Detected: true, Clean: true,
		Iterations: 1, DictResolved: 1, Repaired: 1, RepairKind: "bit-flip",
		Candidates: 40, Survivors: 2, CandidateBatches: 3, ECOVerified: true,
	}
	ref := base.digest()
	perturb := []func(*Result){
		func(r *Result) { r.DictResolved = 0 },
		func(r *Result) { r.Repaired = 0 },
		func(r *Result) { r.RepairKind = "resynth" },
		func(r *Result) { r.Candidates = 41 },
		func(r *Result) { r.Survivors = 3 },
		func(r *Result) { r.CandidateBatches = 4 },
		func(r *Result) { r.ECOVerified = false },
		func(r *Result) { r.RepairFallback = true },
	}
	for i, mut := range perturb {
		cp := *base
		mut(&cp)
		if cp.digest() == ref {
			t.Errorf("perturbation %d did not change the digest", i)
		}
	}
}

// TestRepairSpecDefaults pins that the repair kind implies the fault
// dictionary and validates like the other kinds.
func TestRepairSpecDefaults(t *testing.T) {
	sp := Spec{Design: "9sym", Kind: KindRepair}.withDefaults()
	if !sp.UseDict {
		t.Fatal("repair kind must imply UseDict")
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Spec{Design: "9sym", Kind: "fixit"}).Validate(); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
