package service

// The repair campaign pipeline: one detect → dictionary-localize →
// candidate-search-repair pass. It reuses every cacheable artifact the
// debug pipeline shares (golden program, layout, baseline, dictionary)
// and adds one of its own: the compiled candidate program of the
// injected implementation, keyed by the implementation fingerprint
// and the campaign lane count (prog/<fp>/l<lanes>), so concurrent repair
// campaigns on the same injected design at the same width arm their
// lane batches on forks of one compile.
// When localization had to fall back to probe rounds, the implementation
// netlist has grown observation logic and the cached pristine program no
// longer matches — the session then compiles a fresh one itself.

import (
	"context"
	"fmt"

	"fpgadbg/internal/debug"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/obs"
	"fpgadbg/internal/sim"
)

// runRepairCampaign executes the repair pass for one campaign; the
// caller has already set up the session (golden machine, traces,
// dictionary, progress) and fills in the design, baseline, cache and
// digest fields.
func (s *Service) runRepairCampaign(ctx context.Context, c *campaign, sess *debug.Session,
	impl *netlist.Netlist, implFP string, spec Spec, count func(bool) string) (*Result, error) {

	res := &Result{}
	c.appendEvent("detect", 1, "replaying %d blocks × %d cycles", spec.Words, spec.Cycles)
	det, err := sess.Detect(spec.Words, spec.Cycles)
	if err != nil {
		return nil, err
	}
	if !det.Failed {
		c.appendEvent("detect", 1, "injected error not excited — nothing to repair")
		res.Clean = true
		return res, nil
	}
	res.Detected = true
	res.Iterations = 1
	c.appendEvent("detect", 1, "FAILED outputs %v", det.FailingOutputs)

	diag, err := sess.LocalizeDict(det, spec.MaxRounds, spec.ProbesPerRound)
	if err != nil {
		return nil, err
	}
	res.Rounds = diag.Rounds
	res.ProbesInserted = diag.Probes
	if diag.Dict {
		res.DictResolved = 1
	}

	// Candidate program: shareable only while the implementation netlist
	// is still pristine, i.e. the dictionary resolved the diagnosis
	// without inserting observation logic.
	var prog *sim.Machine
	if diag.Dict {
		v, hit, err := s.cache.GetOrBuild(fmt.Sprintf("prog/%s/l%d", implFP, spec.SimLanes), func() (any, int64, error) {
			csp := c.trace.Start(obs.StageCompile)
			defer csp.End()
			m, err := sim.CompileWidth(impl.Clone(), spec.SimLanes/64)
			if err != nil {
				return nil, 0, err
			}
			return m, m.MemoryFootprint(), nil
		})
		if err != nil {
			return nil, fmt.Errorf("candidate program %s: %w", spec.Design, err)
		}
		// repair.NewEngine forks the machine it is given, so the cached
		// program can be passed directly; it is never mutated.
		prog = v.(*sim.Machine)
		c.appendEvent("compile", 0, "candidate program %s (%s)", implFP[:8], count(hit))
	}

	cor, fellBack, err := sess.CorrectAuto(diag, det, prog)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, err
	}
	res.RepairFallback = fellBack
	res.Fixed = cor.Fixed
	res.Clean = cor.Verified
	if cor.Repaired {
		res.Repaired = 1
		res.RepairKind = cor.RepairKind
		res.Candidates = cor.Candidates
		res.Survivors = cor.Survivors
		res.CandidateBatches = cor.Batches
		res.ECOVerified = cor.ECOVerified
	}
	c.appendEvent("repair", 0, "fixed %v (kind %s), clean=%v", cor.Fixed, res.RepairKind, res.Clean)
	return res, nil
}
