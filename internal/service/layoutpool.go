package service

import (
	"sync"

	"fpgadbg/internal/core"
	"fpgadbg/internal/overlay"
)

// layoutPool shares transactional working layouts of one pristine
// place-and-route result across campaigns. It replaces the per-campaign
// core.Layout.Clone: a campaign checks a copy out, runs its whole
// debug loop inside one layout transaction, and the check-in rolls the
// transaction back — restoring the pristine state bit-identically in
// O(changes) — before the copy (with its warmed persistent router)
// returns to the free list for the next campaign. Clones happen only
// when concurrent campaigns on the same layout key outnumber the free
// copies, so steady-state warm traffic pays zero deep copies.
//
// The pristine reference layout is never handed out and never mutated;
// it only serves Clone (pool growth under concurrency) and the cached
// full re-P&R baseline.
// maxPoolFree bounds the rolled-back copies a pool retains; further
// check-ins are discarded so resident memory stays within the
// (1 + maxPoolFree) × layout bound the artifact cache is charged for.
const maxPoolFree = 3

type layoutPool struct {
	pristine *core.Layout
	digest   string
	// plan is the immutable debug-overlay plan built on the pristine
	// layout (nil for non-overlay layout keys). Campaigns bind
	// per-campaign Selectors to their working copies; the plan itself is
	// shared read-only.
	plan *overlay.Plan

	mu     sync.Mutex
	free   []*core.Layout
	clones int64 // copies ever cloned (peak concurrency demand)
	reuses int64 // rolled-back copies handed out again
}

func newLayoutPool(l *core.Layout) *layoutPool {
	return &layoutPool{pristine: l, digest: l.StateDigest()}
}

// checkout returns an exclusive working layout with an open transaction
// lease; reused reports whether it came off the free list (warm router,
// no clone paid).
func (p *layoutPool) checkout() (l *core.Layout, lease core.Checkpoint, reused bool) {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		l = p.free[n-1]
		p.free = p.free[:n-1]
		p.reuses++
		reused = true
	} else {
		l = p.pristine.Clone()
		p.clones++
	}
	p.mu.Unlock()
	return l, l.Checkpoint(), reused
}

// checkin rolls the lease back and returns the copy to the free list.
// A copy whose rollback fails or whose digest no longer matches the
// pristine state (a campaign leaked an open transaction or mutated
// outside the journal) is discarded instead of poisoning later
// campaigns.
func (p *layoutPool) checkin(l *core.Layout, lease core.Checkpoint) {
	if err := l.Rollback(lease); err != nil {
		return
	}
	if l.StateDigest() != p.digest {
		return
	}
	p.mu.Lock()
	if len(p.free) < maxPoolFree {
		p.free = append(p.free, l)
	}
	p.mu.Unlock()
}

// stats returns the pool counters.
func (p *layoutPool) stats() (clones, reuses int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.clones, p.reuses
}
