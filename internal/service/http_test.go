package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fpgadbg/internal/obs"
)

func TestHTTPRoundTrip(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	cl := &Client{Base: srv.URL, HTTP: srv.Client()}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	if err := cl.Healthz(ctx); err != nil {
		t.Fatal(err)
	}

	st, err := cl.Submit(ctx, fastSpec("9sym", 1))
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.State.Terminal() {
		t.Fatalf("submit status = %+v", st)
	}

	// Stream events until the campaign completes; the stream must replay
	// the past and end at "done".
	var stages []string
	if err := cl.Events(ctx, st.ID, func(ev Event) {
		stages = append(stages, ev.Stage)
	}); err != nil {
		t.Fatal(err)
	}
	if len(stages) == 0 || stages[0] != "queue" || stages[len(stages)-1] != "done" {
		t.Fatalf("event stages = %v", stages)
	}

	res, err := cl.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean || res.Digest == "" {
		t.Fatalf("result = %+v", res)
	}

	list, err := cl.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list = %+v", list)
	}
}

func TestHTTPErrors(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	cl := &Client{Base: srv.URL, HTTP: srv.Client()}
	ctx := context.Background()

	// Unknown design: 400 with the valid names in the message.
	if _, err := cl.Submit(ctx, Spec{Design: "bogus"}); err == nil {
		t.Fatal("bogus design accepted over HTTP")
	} else if !strings.Contains(err.Error(), "9sym") {
		t.Fatalf("error does not list valid designs: %v", err)
	}

	// Unknown campaign: 404.
	if _, err := cl.Status(ctx, "c999999"); err == nil {
		t.Fatal("unknown campaign id accepted")
	}
	resp, err := srv.Client().Get(srv.URL + "/campaigns/c999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}

	// Malformed JSON: 400.
	resp, err = srv.Client().Post(srv.URL+"/campaigns", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestHTTPCancelAndMetrics(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	cl := &Client{Base: srv.URL, HTTP: srv.Client()}
	ctx := context.Background()

	blocker, err := cl.Submit(ctx, fastSpec("styr", 3))
	if err != nil {
		t.Fatal(err)
	}
	victim, err := cl.Submit(ctx, fastSpec("c880", 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Cancel(ctx, victim.ID); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Status(ctx, victim.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", st.State)
	}
	if _, err := cl.Wait(ctx, blocker.ID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), "fpgadbgd") {
		t.Fatal("expvar output missing fpgadbgd service stats")
	}
	// The service's key carries stats plus the telemetry registry with
	// per-stage latency histograms.
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatalf("/metrics is not a JSON object: %v", err)
	}
	var own struct {
		Stats
		Telemetry obs.RegistrySnapshot `json:"telemetry"`
	}
	if err := json.Unmarshal(doc["fpgadbgd"], &own); err != nil {
		t.Fatal(err)
	}
	if own.Done != 1 || own.Canceled != 1 {
		t.Fatalf("metrics stats = %+v", own.Stats)
	}
	hist, ok := own.Telemetry.Histograms["stage."+obs.StageDetect]
	if !ok || hist.Count == 0 {
		t.Fatalf("detect stage histogram missing from /metrics: %v", own.Telemetry.Histograms)
	}
}

// TestHTTPTraceEndpoint pins GET /campaigns/{id}/trace: 404 before the
// campaign finishes (and for unknown IDs), the full StageTrace after.
func TestHTTPTraceEndpoint(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	cl := &Client{Base: srv.URL, HTTP: srv.Client()}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	if _, err := cl.Trace(ctx, "c999999"); err == nil {
		t.Fatal("trace of unknown campaign should 404")
	}
	st, err := cl.Submit(ctx, fastSpec("9sym", 1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := cl.Trace(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Campaign != st.ID || len(tr.Stages) == 0 || tr.WallUs <= 0 {
		t.Fatalf("trace = %+v", tr)
	}
	if res.Trace == nil || len(res.Trace.Stages) != len(tr.Stages) {
		t.Fatalf("trace endpoint (%d stages) disagrees with result (%+v)",
			len(tr.Stages), res.Trace)
	}
	if tr.Stage(obs.StageDetect) == nil || tr.Stage(obs.StageQueue) == nil {
		t.Fatalf("trace missing core stages: %+v", tr.Stages)
	}
}

// TestHTTPErrorPathsStayHealthy drives every documented error path in
// one session — malformed submissions, unknown IDs on each routed
// endpoint, a cancel racing completion — asserting the status codes and
// that the daemon keeps serving real work afterwards.
func TestHTTPErrorPathsStayHealthy(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	ctx := context.Background()

	post := func(path, body string) int {
		resp, err := srv.Client().Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		return resp.StatusCode
	}
	get := func(path string) int {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		return resp.StatusCode
	}

	// Malformed spec bodies must all be rejected with 400.
	badSpecs := []struct{ name, body string }{
		{"truncated JSON", "{"},
		{"wrong type", `{"design":5}`},
		{"JSON array", `[]`},
		{"empty body", ""},
		{"spec over the 64KiB body cap", `{"design":"` + strings.Repeat("a", 70<<10) + `"}`},
	}
	for _, bad := range badSpecs {
		if code := post("/campaigns", bad.body); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", bad.name, code)
		}
	}

	// Unknown and syntactically hostile IDs on every {id} route: 404,
	// never a panic or a 500.
	for _, id := range []string{"c999999", "bogus", "%2e%2e"} {
		if code := get("/campaigns/" + id + "/trace"); code != http.StatusNotFound {
			t.Errorf("trace of %q: status %d, want 404", id, code)
		}
		if code := post("/campaigns/"+id+"/cancel", ""); code != http.StatusNotFound {
			t.Errorf("cancel of %q: status %d, want 404", id, code)
		}
		if code := get("/campaigns/" + id + "/events"); code != http.StatusNotFound {
			t.Errorf("events of %q: status %d, want 404", id, code)
		}
	}

	// Cancel racing completion: canceling a finished campaign is the
	// documented no-op — 200, and the campaign stays done with its result.
	id, err := svc.Submit(fastSpec("9sym", 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Wait(ctx, id); err != nil {
		t.Fatal(err)
	}
	if code := post("/campaigns/"+id+"/cancel", ""); code != http.StatusOK {
		t.Fatalf("cancel after done: status %d, want 200", code)
	}
	st, err := svc.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Result == nil {
		t.Fatalf("cancel-after-done mutated the campaign: %+v", st)
	}

	// The gauntlet must leave the daemon fully serviceable.
	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		OK bool `json:"ok"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !health.OK {
		t.Fatalf("healthz after error gauntlet: %d ok=%v", resp.StatusCode, health.OK)
	}
	id2, err := svc.Submit(fastSpec("9sym", 2))
	if err != nil {
		t.Fatal(err)
	}
	if res, err := svc.Wait(ctx, id2); err != nil || res.Digest == "" {
		t.Fatalf("campaign after error gauntlet: %v %+v", err, res)
	}
}
