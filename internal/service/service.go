package service

import (
	"container/heap"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fpgadbg/internal/bench"
	"fpgadbg/internal/core"
	"fpgadbg/internal/debug"
	"fpgadbg/internal/faults"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/obs"
	"fpgadbg/internal/overlay"
	"fpgadbg/internal/sim"
	"fpgadbg/internal/store"
	"fpgadbg/internal/synth"
)

// Campaign kinds.
const (
	// KindDebug is the full detect → localize → correct loop (default).
	KindDebug = "debug"
	// KindFaultScan fault-simulates the design's exhaustive single-fault
	// universe in SimLanes-sized batches and reports detection coverage and
	// latency; it needs no layout, no injection and no correction.
	KindFaultScan = "faultscan"
	// Fault models of a KindFaultScan campaign (Spec.FaultModel).
	FaultModelSingle       = "single"
	FaultModelPair         = "pair"
	FaultModelSEU          = "seu"
	FaultModelInterconnect = "interconnect"

	// KindRepair runs one detect → dictionary-localize → repair pass with
	// the lane-parallel repair-candidate search: the golden model serves
	// only as a behavioural oracle, and the campaign reports the search
	// statistics (candidates, survivors, batches) alongside the usual
	// loop fields. The fault dictionary is always attached, and the
	// compiled candidate program is cached per implementation fingerprint.
	KindRepair = "repair"
)

// Spec describes one campaign: which design, which injected error, and
// the knobs of the loop. Zero values take the documented defaults so an
// HTTP client can post `{"design":"c880","fault_seed":3}`.
type Spec struct {
	// Design is a benchmark catalog name (bench.Catalog).
	Design string `json:"design"`
	// Kind selects the campaign pipeline: KindDebug (default) or
	// KindFaultScan.
	Kind string `json:"kind,omitempty"`
	// FaultSeed selects the injected design error (debug campaigns).
	FaultSeed int64 `json:"fault_seed"`
	// Seed drives layout and stimulus randomness (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Overhead is the tiling resource slack (default 0.20).
	Overhead float64 `json:"overhead,omitempty"`
	// TileFrac is the tile size as a device fraction (default 0.10).
	TileFrac float64 `json:"tile_frac,omitempty"`
	// PlaceEffort scales annealing work (default 0.5).
	PlaceEffort float64 `json:"place_effort,omitempty"`
	// Words and Cycles shape each detection replay (defaults 8 and 4).
	Words  int `json:"words,omitempty"`
	Cycles int `json:"cycles,omitempty"`
	// MaxIters bounds detect→localize→correct iterations (default 4).
	MaxIters int `json:"max_iters,omitempty"`
	// MaxRounds bounds observation-insertion rounds (default 4).
	MaxRounds int `json:"max_rounds,omitempty"`
	// ProbesPerRound is the observation fan-out per round (default 4).
	ProbesPerRound int `json:"probes_per_round,omitempty"`
	// Patterns is the broadcast-pattern count of a faultscan campaign
	// (default 64).
	Patterns int `json:"patterns,omitempty"`
	// FaultModel selects the faultscan campaign's fault model:
	// FaultModelSingle (default) scans the exhaustive single-fault
	// universe; FaultModelPair scans sampled fault pairs and diagnoses
	// their composed syndromes through the cached composition dictionary;
	// FaultModelSEU arms each sampled fault only for a transient cycle
	// window and reports detection latency and masking; FaultModelInterconnect
	// scans bridging and route stuck-at faults. Only valid with
	// Kind == KindFaultScan.
	FaultModel string `json:"fault_model,omitempty"`
	// SimLanes is the simulator lane count for the campaign's
	// lane-parallel engines — the fault-scan host and the cached repair
	// candidate program. Must be a multiple of 64 between 64 and
	// 64·sim.MaxWidth; each replay retires SimLanes faults or repair
	// candidates at once. Default 64 (the classic single-word engine).
	SimLanes int `json:"sim_lanes,omitempty"`
	// UseDict attaches a fault dictionary (built once per design and
	// cached) to a debug campaign, so localization tries a probe-free
	// dictionary lookup before inserting observation logic.
	UseDict bool `json:"use_dict,omitempty"`
	// Overlay plans a pre-reserved debug overlay into the campaign's
	// layout (routing headroom + a time-multiplexed observation network
	// covering every cell output) and enables the causal-chain
	// localizer: probe rounds become zero-CAD configuration switches
	// instead of incremental place-and-route. Overlay layouts live under
	// their own cache key, so overlay and non-overlay campaigns never
	// share a pristine layout. Not valid with Kind == KindFaultScan
	// (faultscan builds no layout).
	Overlay bool `json:"overlay,omitempty"`
	// Priority orders the queue: higher runs first; equal priorities are
	// FIFO.
	Priority int `json:"priority,omitempty"`
}

func (sp Spec) withDefaults() Spec {
	if sp.Kind == "" {
		sp.Kind = KindDebug
	}
	if sp.Kind == KindRepair {
		// The repair pipeline always consults the dictionary first; a hit
		// keeps the implementation netlist pristine, which is what lets
		// the cached candidate program be shared.
		sp.UseDict = true
	}
	if sp.Seed == 0 {
		sp.Seed = 1
	}
	if sp.Kind == KindFaultScan && sp.FaultModel == "" {
		sp.FaultModel = FaultModelSingle
	}
	if sp.Patterns == 0 {
		sp.Patterns = 64
	}
	if sp.SimLanes == 0 {
		sp.SimLanes = 64
	}
	if sp.Overhead == 0 {
		sp.Overhead = 0.20
	}
	if sp.TileFrac == 0 {
		sp.TileFrac = 0.10
	}
	if sp.PlaceEffort == 0 {
		sp.PlaceEffort = 0.5
	}
	if sp.Words == 0 {
		sp.Words = 8
	}
	if sp.Cycles == 0 {
		// Debug detection holds each block 4 cycles; faultscan matches the
		// benchrepro -seu / EXPERIMENTS.md reference of 2 cycles per pattern.
		if sp.Kind == KindFaultScan {
			sp.Cycles = 2
		} else {
			sp.Cycles = 4
		}
	}
	if sp.MaxIters == 0 {
		sp.MaxIters = 4
	}
	if sp.MaxRounds == 0 {
		sp.MaxRounds = 4
	}
	if sp.ProbesPerRound == 0 {
		sp.ProbesPerRound = 4
	}
	return sp
}

// Validate rejects malformed specs before they enter the queue.
func (sp Spec) Validate() error {
	if _, err := bench.ByName(sp.Design); err != nil {
		return err
	}
	if sp.Kind != "" && sp.Kind != KindDebug && sp.Kind != KindFaultScan && sp.Kind != KindRepair {
		return fmt.Errorf("service: unknown campaign kind %q (have %q, %q, %q)",
			sp.Kind, KindDebug, KindFaultScan, KindRepair)
	}
	if sp.Patterns < 0 {
		return fmt.Errorf("service: patterns must be positive (got %d)", sp.Patterns)
	}
	switch sp.FaultModel {
	case "", FaultModelSingle, FaultModelPair, FaultModelSEU, FaultModelInterconnect:
	default:
		return fmt.Errorf("service: unknown fault model %q (have %q, %q, %q, %q)",
			sp.FaultModel, FaultModelSingle, FaultModelPair, FaultModelSEU, FaultModelInterconnect)
	}
	if sp.FaultModel != "" && sp.FaultModel != FaultModelSingle && sp.Kind != KindFaultScan {
		return fmt.Errorf("service: fault model %q needs kind %q (got %q)", sp.FaultModel, KindFaultScan, sp.Kind)
	}
	if sp.Overlay && sp.Kind == KindFaultScan {
		return fmt.Errorf("service: overlay needs a layout; kind %q builds none", KindFaultScan)
	}
	if sp.Words < 0 || sp.Cycles < 0 {
		return fmt.Errorf("service: words and cycles must be positive (got %d, %d)", sp.Words, sp.Cycles)
	}
	if sp.MaxIters < 0 || sp.MaxRounds < 0 || sp.ProbesPerRound < 0 {
		return fmt.Errorf("service: loop bounds must be positive")
	}
	if sp.Overhead < 0 || sp.Overhead > 1 || sp.TileFrac < 0 || sp.TileFrac > 1 {
		return fmt.Errorf("service: overhead and tile_frac must lie in (0,1]")
	}
	if sp.SimLanes != 0 && (sp.SimLanes%64 != 0 || sp.SimLanes < 0 || sp.SimLanes > 64*sim.MaxWidth) {
		return fmt.Errorf("service: sim_lanes must be a multiple of 64 in [64, %d] (got %d)",
			64*sim.MaxWidth, sp.SimLanes)
	}
	return nil
}

// layoutKey content-addresses the pristine tiled layout of an
// implementation netlist under this spec's physical-design knobs. Floats
// are encoded exactly — truncation would alias distinct parameters onto
// one key and serve a layout built with the wrong knobs.
func (sp Spec) layoutKey(implFP string) string {
	key := fmt.Sprintf("layout/%s/o%s-t%s-s%d-e%s",
		implFP,
		strconv.FormatFloat(sp.Overhead, 'g', -1, 64),
		strconv.FormatFloat(sp.TileFrac, 'g', -1, 64),
		sp.Seed,
		strconv.FormatFloat(sp.PlaceEffort, 'g', -1, 64))
	if sp.Overlay {
		// Overlay layouts reserve routing capacity and carry trunk
		// wiring; the suffix is appended only when enabled so every
		// historical non-overlay key is unchanged.
		key += fmt.Sprintf("-ov%d", overlay.DefaultChannels)
	}
	return key
}

// State is a campaign's lifecycle position.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Event is one progress notification of a campaign.
type Event struct {
	Seq   int    `json:"seq"`
	Stage string `json:"stage"`
	Round int    `json:"round,omitempty"`
	Msg   string `json:"msg"`
}

// Result is the outcome of a finished campaign. Every field except WallMs
// is deterministic for a given Spec; Digest hashes those fields so tests
// and clients can assert seed-stability.
type Result struct {
	Design   string `json:"design"`
	Injected string `json:"injected"`
	// Detected reports whether the injected error was excited at all;
	// Clean whether the loop converged to a passing design.
	Detected   bool `json:"detected"`
	Clean      bool `json:"clean"`
	Iterations int  `json:"iterations"`
	// Rounds and ProbesInserted total the localization work.
	Rounds         int      `json:"rounds"`
	ProbesInserted int      `json:"probes_inserted"`
	Fixed          []string `json:"fixed,omitempty"`
	// TileWork is the campaign's tile-local CAD effort; FullWork the full
	// re-place-and-route baseline of the pristine layout (cached, shared
	// across campaigns on the same design).
	TileWork float64 `json:"tile_work"`
	FullWork float64 `json:"full_work"`
	// SpeedupPerIter is FullWork divided by tile work per physical update.
	SpeedupPerIter float64 `json:"speedup_per_iter"`
	// DictResolved counts diagnoses the fault dictionary settled without
	// probe rounds (debug campaigns with UseDict).
	DictResolved int `json:"dict_resolved,omitempty"`
	// Repaired counts corrections produced by the repair-candidate search
	// (as opposed to golden-copy restorations); RepairKind names the last
	// winning candidate shape and the three search counters total the
	// candidates enumerated, the detection-stimulus survivors and the
	// SimLanes-candidate lane batches replayed. ECOVerified reports the
	// tile-local sign-off replay of the last repair; RepairFallback that
	// at least one correction had to fall back to the golden copy.
	Repaired         int    `json:"repaired,omitempty"`
	RepairKind       string `json:"repair_kind,omitempty"`
	Candidates       int    `json:"candidates,omitempty"`
	Survivors        int    `json:"survivors,omitempty"`
	CandidateBatches int    `json:"candidate_batches,omitempty"`
	ECOVerified      bool   `json:"eco_verified,omitempty"`
	RepairFallback   bool   `json:"repair_fallback,omitempty"`
	// Faultscan campaigns (Kind == "faultscan") report the universe scan
	// instead of the loop fields above.
	FaultsTotal       int     `json:"faults_total,omitempty"`
	FaultsDetected    int     `json:"faults_detected,omitempty"`
	FaultBatches      int     `json:"fault_batches,omitempty"`
	FaultCoverage     float64 `json:"fault_coverage,omitempty"`
	MeanLatencyCycles float64 `json:"mean_latency_cycles,omitempty"`
	FaultsPerSec      float64 `json:"faults_per_sec,omitempty"`
	// Multi-fault faultscan campaigns (Spec.FaultModel beyond "single")
	// add their model's metrics. Pair campaigns: how many sampled pairs
	// were scanned, detected, and diagnosed probe-free by the syndrome
	// composition dictionary (exact-signature confirmation in simulation);
	// PairDiagRate is the probe-free resolution rate over detected pairs —
	// confirmed pair diagnoses plus masked-pair verdicts (a pair whose
	// signature equals a single's, resolved to the dominant fault's
	// equivalence class with the masked flag). SEU campaigns: the
	// detection-latency p50/p99 in cycles from the arming edge, and the
	// fraction of windowed faults the window masked (permanent counterpart
	// detected, transient undetected). Interconnect campaigns: the route
	// stuck-at and bridge counts of the scanned universe.
	FaultModel     string  `json:"fault_model,omitempty"`
	PairsTotal     int     `json:"pairs_total,omitempty"`
	PairsDetected  int     `json:"pairs_detected,omitempty"`
	PairsDiagnosed int     `json:"pairs_diagnosed,omitempty"`
	PairDiagRate   float64 `json:"pair_diag_rate,omitempty"`
	SEULatencyP50  float64 `json:"seu_latency_p50,omitempty"`
	SEULatencyP99  float64 `json:"seu_latency_p99,omitempty"`
	MaskedFraction float64 `json:"masked_fraction,omitempty"`
	RouteFaults    int     `json:"route_faults,omitempty"`
	BridgeFaults   int     `json:"bridge_faults,omitempty"`
	// Overlay campaigns (Spec.Overlay) report the pre-reserved debug
	// overlay's use: OverlaySwitches counts zero-CAD tap-mux probe
	// switches, OverlayFallbacks the probe rounds that fell back to the
	// incremental-CAD path (net outside overlay reach).
	Overlay          bool `json:"overlay,omitempty"`
	OverlaySwitches  int  `json:"overlay_switches,omitempty"`
	OverlayFallbacks int  `json:"overlay_fallbacks,omitempty"`
	// CacheHits / CacheMisses count this campaign's artifact lookups
	// (golden netlist+simulator artifact, layout, baseline, dictionary).
	CacheHits   int     `json:"cache_hits"`
	CacheMisses int     `json:"cache_misses"`
	WallMs      float64 `json:"wall_ms"`
	Digest      string  `json:"digest"`
	// Trace is the campaign's per-stage telemetry (wall-clock spans), nil
	// when the service runs with telemetry disabled. Timing is host noise,
	// so Trace is — like WallMs — excluded from Digest.
	Trace *obs.StageTrace `json:"stage_trace,omitempty"`
}

// digest hashes the deterministic fields (wall-clock throughput and cache
// outcomes excluded).
func (r *Result) digest() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%s|%v|%v|%d|%d|%d|%v|%.0f|%.0f|%d|%d|%d|%d|%.3f|%d|%s|%d|%d|%d|%v|%v",
		r.Design, r.Injected, r.Detected, r.Clean, r.Iterations,
		r.Rounds, r.ProbesInserted, r.Fixed, r.TileWork, r.FullWork,
		r.DictResolved, r.FaultsTotal, r.FaultsDetected, r.FaultBatches,
		r.MeanLatencyCycles,
		r.Repaired, r.RepairKind, r.Candidates, r.Survivors, r.CandidateBatches,
		r.ECOVerified, r.RepairFallback)
	if r.FaultModel != "" && r.FaultModel != FaultModelSingle {
		// Extended multi-fault fields join the digest only when a model
		// sets them, so every historical single-model digest is unchanged.
		fmt.Fprintf(h, "|%s|%d|%d|%d|%.4f|%.2f|%.2f|%.4f|%d|%d",
			r.FaultModel, r.PairsTotal, r.PairsDetected, r.PairsDiagnosed, r.PairDiagRate,
			r.SEULatencyP50, r.SEULatencyP99, r.MaskedFraction, r.RouteFaults, r.BridgeFaults)
	}
	if r.Overlay {
		// Overlay fields join the digest only for overlay campaigns, so
		// every historical non-overlay digest is unchanged.
		fmt.Fprintf(h, "|ov|%d|%d", r.OverlaySwitches, r.OverlayFallbacks)
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:8])
}

// Status is the externally visible snapshot of a campaign.
type Status struct {
	ID       string    `json:"id"`
	State    State     `json:"state"`
	Spec     Spec      `json:"spec"`
	Queued   time.Time `json:"queued"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`
	Events   int       `json:"events"`
	Error    string    `json:"error,omitempty"`
	Result   *Result   `json:"result,omitempty"`
}

// campaign is the internal record.
type campaign struct {
	id   string
	spec Spec
	seq  int64

	// trace collects the campaign's per-stage telemetry spans; qspan is
	// the open queue-wait span, ended when a worker picks the campaign
	// up. Both are nil when the service runs with telemetry disabled.
	// They are written only by Submit and the owning worker, never
	// concurrently, so they live outside c.mu.
	trace *obs.Trace
	qspan *obs.Span

	mu       sync.Mutex
	state    State
	events   []Event
	subs     map[chan Event]struct{}
	err      error
	result   *Result
	cancel   context.CancelFunc
	done     chan struct{}
	queued   time.Time
	started  time.Time
	finished time.Time
}

// appendEvent records and fans out one event. Subscriber channels are
// buffered; a subscriber that stops draining loses events rather than
// blocking the campaign.
func (c *campaign) appendEvent(stage string, round int, format string, args ...any) {
	c.mu.Lock()
	c.appendEventLocked(stage, round, fmt.Sprintf(format, args...))
	c.mu.Unlock()
}

// appendEventLocked is appendEvent with c.mu already held.
func (c *campaign) appendEventLocked(stage string, round int, msg string) {
	ev := Event{Seq: len(c.events) + 1, Stage: stage, Round: round, Msg: msg}
	c.events = append(c.events, ev)
	for ch := range c.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// finishLocked moves the campaign to a terminal state and releases
// waiters and subscribers. Caller holds c.mu.
func (c *campaign) finishLocked(state State, res *Result, err error) {
	c.state = state
	c.result = res
	c.err = err
	c.finished = time.Now()
	for ch := range c.subs {
		close(ch)
		delete(c.subs, ch)
	}
	close(c.done)
}

func (c *campaign) status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{
		ID: c.id, State: c.state, Spec: c.spec,
		Queued: c.queued, Started: c.started, Finished: c.finished,
		Events: len(c.events), Result: c.result,
	}
	if c.err != nil {
		st.Error = c.err.Error()
	}
	return st
}

// queueItem orders campaigns by (priority desc, submission seq asc).
type queueItem struct {
	c *campaign
}

type campaignQueue []queueItem

func (q campaignQueue) Len() int { return len(q) }
func (q campaignQueue) Less(i, j int) bool {
	if q[i].c.spec.Priority != q[j].c.spec.Priority {
		return q[i].c.spec.Priority > q[j].c.spec.Priority
	}
	return q[i].c.seq < q[j].c.seq
}
func (q campaignQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *campaignQueue) Push(x any)   { *q = append(*q, x.(queueItem)) }
func (q *campaignQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = queueItem{}
	*q = old[:n-1]
	return it
}

// Config tunes a Service.
type Config struct {
	// Workers bounds concurrently running campaigns (default GOMAXPROCS).
	// Negative means no workers at all: campaigns queue but never run —
	// useful for tests and tooling that inspect queue state.
	Workers int
	// CacheEntries and CacheBytes bound the artifact cache (defaults 512
	// entries, 256 MiB estimated).
	CacheEntries int
	CacheBytes   int64
	// RetainCampaigns bounds retained terminal campaign records (event
	// logs + results); the oldest finished campaigns are pruned beyond it
	// so a long-running daemon's memory stays bounded like its cache.
	// Default 4096; negative means unbounded.
	RetainCampaigns int
	// TraceLog, when set, receives every finished campaign's StageTrace
	// as one NDJSON line (append-only; the daemon wires -trace-log here).
	TraceLog io.Writer
	// NoTelemetry disables the metrics registry and per-campaign stage
	// traces entirely: Result.Trace stays nil, /metrics reports service
	// counters only, and the pipelines pay one nil test per stage. The
	// overhead benchmark (experiments.TelemetryBench) uses it as the
	// control arm.
	NoTelemetry bool
	// DefaultOverlay turns Spec.Overlay on for every submitted campaign
	// that builds a layout (faultscan campaigns are left alone — they
	// have none). The daemon wires -overlay here.
	DefaultOverlay bool
	// Store, when set, makes campaign state durable: lifecycle
	// transitions are journaled, rebuildable artifacts spill into the
	// blob area, and Open replays the journal on startup (persist.go).
	// The service takes ownership and closes the store on Close.
	Store store.Store
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Workers < 0 {
		c.Workers = 0
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 512
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 << 20
	}
	if c.RetainCampaigns == 0 {
		c.RetainCampaigns = 4096
	}
	return c
}

// Stats is a service-level snapshot, served under "fpgadbgd" by the
// /metrics endpoint.
type Stats struct {
	Workers   int        `json:"workers"`
	Submitted int64      `json:"submitted"`
	Queued    int        `json:"queued"`
	Running   int        `json:"running"`
	Done      int64      `json:"done"`
	Failed    int64      `json:"failed"`
	Canceled  int64      `json:"canceled"`
	Cache     CacheStats `json:"cache"`
	// QueueDepth is the genuinely-waiting queue length (same value the
	// queue_depth gauge tracks; equals Queued).
	QueueDepth int `json:"queue_depth"`
	// RunningAge is the age in seconds of the oldest in-flight campaign,
	// 0 when idle — a stuck-worker tell for dashboards.
	RunningAge float64 `json:"running_age_sec"`
	// ByKind counts submitted campaigns per kind.
	ByKind map[string]int64 `json:"by_kind,omitempty"`
	// Durable-store fields, present only when the service runs with a
	// Config.Store (the default in-memory daemon omits them, keeping the
	// historical /metrics shape byte-compatible).
	Store *store.Stats `json:"store,omitempty"`
	// Recovered counts campaigns requeued by journal replay at Open.
	Recovered int64 `json:"recovered,omitempty"`
	// SpillHits / SpillMisses count artifact rebuilds served from (or
	// falling past) the store's spilled blobs.
	SpillHits   int64 `json:"spill_hits,omitempty"`
	SpillMisses int64 `json:"spill_misses,omitempty"`
	// JournalErrors counts journal or blob writes that failed; nonzero
	// means durability is degraded and the disk wants looking at.
	JournalErrors int64 `json:"journal_errors,omitempty"`
}

// Service is the concurrent campaign server.
type Service struct {
	cfg   Config
	cache *Cache
	// reg is this service's metrics registry (per-stage histograms,
	// queue/worker gauges, cache counters); nil with NoTelemetry. It is
	// instance-owned — two services in one process never share counters.
	reg *obs.Registry
	// traceLog is the optional NDJSON sink for finished stage traces.
	traceLog *obs.TraceLog

	mu       sync.Mutex
	cond     *sync.Cond
	queue    campaignQueue
	byID     map[string]*campaign
	order    []string // submission order, for List
	nextSeq  int64
	running  int
	done     int64
	failed   int64
	cancels  int64
	byKind   map[string]int64     // submitted campaigns per kind
	runStart map[string]time.Time // start times of in-flight campaigns
	closed   bool

	// Durable state (persist.go); store is nil without Config.Store.
	store       store.Store
	blobIdx     map[string]store.BlobRef // journal blob index: record ID → blob
	recovered   int64                    // campaigns requeued by restore
	spillHits   int64                    // artifacts rebuilt from spilled blobs
	spillMisses int64                    // blob lookups that fell back to a rebuild
	// journalErrs counts journal/blob writes that failed. Atomic, not
	// s.mu-guarded: journal appends run on both sides of the service
	// lock, and a failure path that retook s.mu would deadlock any
	// caller journaling while holding it.
	journalErrs atomic.Int64

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup
}

// New starts a service with cfg.Workers campaign workers. Use Open when
// cfg.Store should be replayed before the workers pick up campaigns.
func New(cfg Config) *Service {
	s := newService(cfg)
	s.startWorkers()
	return s
}

// newService builds the service without starting workers, so Open can
// restore journaled state into a quiescent queue first.
func newService(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:      cfg,
		cache:    NewCache(cfg.CacheEntries, cfg.CacheBytes),
		byID:     make(map[string]*campaign),
		byKind:   make(map[string]int64),
		runStart: make(map[string]time.Time),
		store:    cfg.Store,
	}
	if s.store != nil {
		s.blobIdx = make(map[string]store.BlobRef)
	}
	if !cfg.NoTelemetry {
		s.reg = obs.NewRegistry()
		s.traceLog = obs.NewTraceLog(cfg.TraceLog)
	}
	s.cond = sync.NewCond(&s.mu)
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	return s
}

func (s *Service) startWorkers() {
	for w := 0; w < s.cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Cache exposes the artifact cache (stats, pre-warming in tests).
func (s *Service) Cache() *Cache { return s.cache }

// Registry exposes the service's metrics registry (nil with NoTelemetry).
func (s *Service) Registry() *obs.Registry { return s.reg }

// Submit validates and enqueues a campaign, returning its ID.
func (s *Service) Submit(spec Spec) (string, error) {
	spec = spec.withDefaults()
	if s.cfg.DefaultOverlay && spec.Kind != KindFaultScan {
		spec.Overlay = true
	}
	if err := spec.Validate(); err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return "", fmt.Errorf("service: closed")
	}
	s.nextSeq++
	c := &campaign{
		id:     fmt.Sprintf("c%06d", s.nextSeq),
		spec:   spec,
		seq:    s.nextSeq,
		state:  StateQueued,
		subs:   make(map[chan Event]struct{}),
		done:   make(chan struct{}),
		queued: time.Now(),
	}
	s.mu.Unlock()

	// The fsynced submit append runs outside s.mu so a slow disk never
	// serializes the whole API behind one Submit. Journal-order safety:
	// the campaign is not registered yet, so no worker or Cancel can
	// reach it — its Start/Done/Canceled records cannot precede the
	// Submit record (Fold drops records for IDs it has not seen submit).
	s.journalSubmit(c.id, spec)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.reg != nil {
		c.trace = obs.NewTrace(c.id, spec.Design, spec.Kind, s.reg)
		c.qspan = c.trace.Start(obs.StageQueue)
	}
	s.byKind[spec.Kind]++
	s.reg.Counter("campaigns." + spec.Kind).Add(1)
	s.byID[c.id] = c
	s.order = append(s.order, c.id)
	if s.closed {
		// Close ran while the submit record was being journaled. Mirror
		// Close's treatment of queued campaigns: canceled in-memory (so
		// Wait/Status resolve), but journaled as queued — the next Open
		// requeues it, which is what a durable queue owes an accepted
		// submission.
		c.mu.Lock()
		c.appendEventLocked("cancel", 0, "service shutting down")
		c.finishLocked(StateCanceled, nil, context.Canceled)
		c.mu.Unlock()
		s.cancels++
		return c.id, nil
	}
	s.reg.Gauge("queue_depth").Add(1)
	heap.Push(&s.queue, queueItem{c: c})
	s.cond.Signal()
	c.appendEvent("queue", 0, "queued (priority %d)", spec.Priority)
	return c.id, nil
}

func (s *Service) lookup(id string) (*campaign, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.byID[id]
	if !ok {
		return nil, fmt.Errorf("service: no campaign %q", id)
	}
	return c, nil
}

// Status reports a campaign snapshot.
func (s *Service) Status(id string) (Status, error) {
	c, err := s.lookup(id)
	if err != nil {
		return Status{}, err
	}
	return c.status(), nil
}

// Trace returns a finished campaign's per-stage telemetry. It errors for
// unknown campaigns, campaigns that have not completed successfully, and
// services running with telemetry disabled.
func (s *Service) Trace(id string) (*obs.StageTrace, error) {
	c, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.result == nil || c.result.Trace == nil {
		return nil, fmt.Errorf("service: campaign %q has no stage trace (state %s)", id, c.state)
	}
	return c.result.Trace, nil
}

// List returns every campaign's status in submission order.
func (s *Service) List() []Status {
	// Snapshot the campaign pointers under s.mu (Submit writes the map);
	// status() then takes each c.mu, preserving the s.mu → c.mu order.
	s.mu.Lock()
	cs := make([]*campaign, 0, len(s.order))
	for _, id := range s.order {
		cs = append(cs, s.byID[id])
	}
	s.mu.Unlock()
	out := make([]Status, 0, len(cs))
	for _, c := range cs {
		out = append(out, c.status())
	}
	return out
}

// Events returns the events so far plus a live channel for the rest. The
// channel is closed when the campaign reaches a terminal state; cancel the
// subscription with the returned func.
func (s *Service) Events(id string) ([]Event, <-chan Event, func(), error) {
	c, err := s.lookup(id)
	if err != nil {
		return nil, nil, nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	past := append([]Event(nil), c.events...)
	ch := make(chan Event, 256)
	if c.state.Terminal() {
		close(ch)
		return past, ch, func() {}, nil
	}
	c.subs[ch] = struct{}{}
	unsub := func() {
		c.mu.Lock()
		if _, ok := c.subs[ch]; ok {
			delete(c.subs, ch)
			close(ch)
		}
		c.mu.Unlock()
	}
	return past, ch, unsub, nil
}

// Wait blocks until the campaign finishes (or ctx expires) and returns
// its result; failed and canceled campaigns return their error.
func (s *Service) Wait(ctx context.Context, id string) (*Result, error) {
	c, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	select {
	case <-c.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return nil, c.err
	}
	return c.result, nil
}

// Cancel stops a campaign: dequeued if still queued, interrupted through
// its context if running. Canceling a finished campaign is a no-op.
func (s *Service) Cancel(id string) error {
	c, err := s.lookup(id)
	if err != nil {
		return err
	}
	wasQueued := false
	c.mu.Lock()
	switch c.state {
	case StateQueued:
		c.appendEventLocked("cancel", 0, "canceled while queued")
		c.finishLocked(StateCanceled, nil, context.Canceled)
		wasQueued = true
	case StateRunning:
		c.cancel() // worker observes ctx and finishes as canceled
	}
	c.mu.Unlock()
	// Lock order is always s.mu before c.mu (the worker holds s.mu while
	// starting campaigns), so the counter update happens after c.mu drops.
	if wasQueued {
		s.mu.Lock()
		s.cancels++
		s.reg.Gauge("queue_depth").Add(-1)
		s.mu.Unlock()
		// An explicit cancel is user intent and must survive a restart;
		// contrast Close, which leaves queued campaigns journaled as
		// queued so the next Open requeues them.
		s.journal(store.Record{Kind: store.KindCanceled, ID: id, Error: "canceled while queued"})
	}
	return nil
}

// QueueDepth counts genuinely waiting campaigns — the cheap signal the
// coordinator's work-stealing router reads on every submission.
func (s *Service) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	queued := 0
	for _, it := range s.queue {
		it.c.mu.Lock()
		if it.c.state == StateQueued {
			queued++
		}
		it.c.mu.Unlock()
	}
	return queued
}

// Stats snapshots service counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Canceled-while-queued campaigns stay in the heap until a worker
	// skips them; count only genuinely waiting ones.
	queued := 0
	for _, it := range s.queue {
		it.c.mu.Lock()
		if it.c.state == StateQueued {
			queued++
		}
		it.c.mu.Unlock()
	}
	age := 0.0
	now := time.Now()
	for _, started := range s.runStart {
		if a := now.Sub(started).Seconds(); a > age {
			age = a
		}
	}
	var byKind map[string]int64
	if len(s.byKind) > 0 {
		byKind = make(map[string]int64, len(s.byKind))
		for k, n := range s.byKind {
			byKind[k] = n
		}
	}
	st := Stats{
		Workers:    s.cfg.Workers,
		Submitted:  s.nextSeq,
		Queued:     queued,
		Running:    s.running,
		Done:       s.done,
		Failed:     s.failed,
		Canceled:   s.cancels,
		Cache:      s.cache.Stats(),
		QueueDepth: queued,
		RunningAge: age,
		ByKind:     byKind,
	}
	if s.store != nil {
		ss := s.store.Stats()
		st.Store = &ss
		st.Recovered = s.recovered
		st.SpillHits = s.spillHits
		st.SpillMisses = s.spillMisses
		st.JournalErrors = s.journalErrs.Load()
	}
	return st
}

// pruneLocked drops the oldest terminal campaign records beyond the
// retention budget. Caller holds s.mu; c.mu nests inside per the global
// lock order.
func (s *Service) pruneLocked() {
	if s.cfg.RetainCampaigns < 0 {
		return
	}
	excess := len(s.order) - s.cfg.RetainCampaigns
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		c := s.byID[id]
		c.mu.Lock()
		terminal := c.state.Terminal()
		c.mu.Unlock()
		if excess > 0 && terminal {
			delete(s.byID, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// Close cancels queued and running campaigns and waits for the workers.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	for s.queue.Len() > 0 {
		it := heap.Pop(&s.queue).(queueItem)
		c := it.c
		c.mu.Lock()
		// Campaigns already canceled via Cancel were counted then; only
		// count the ones this shutdown actually cancels.
		if c.state == StateQueued {
			s.cancels++
			s.reg.Gauge("queue_depth").Add(-1)
			c.appendEventLocked("cancel", 0, "service shutting down")
			c.finishLocked(StateCanceled, nil, context.Canceled)
		}
		c.mu.Unlock()
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.baseCancel()
	s.wg.Wait()
	// The workers are drained. A Submit racing Close may still attempt
	// one journal append after this; the store rejects appends once
	// closed and the service counts that as a journal error.
	if s.store != nil {
		s.store.Close() //nolint:errcheck // shutdown path; nothing to do with it
	}
}

// worker pulls campaigns off the queue until the service closes.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for s.queue.Len() == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed && s.queue.Len() == 0 {
			s.mu.Unlock()
			return
		}
		it := heap.Pop(&s.queue).(queueItem)
		c := it.c
		c.mu.Lock()
		if c.state != StateQueued { // canceled while queued
			c.mu.Unlock()
			s.mu.Unlock()
			continue
		}
		ctx, cancel := context.WithCancel(s.baseCtx)
		c.state = StateRunning
		c.started = time.Now()
		c.cancel = cancel
		c.appendEventLocked("start", 0, "campaign running")
		c.mu.Unlock()
		s.running++
		s.runStart[c.id] = c.started
		s.reg.Gauge("queue_depth").Add(-1)
		s.reg.Gauge("workers_busy").Add(1)
		s.mu.Unlock()
		// The queue-wait span closes when work actually begins; from here
		// on the campaign's own stages take over the trace.
		c.qspan.End()
		s.journal(store.Record{Kind: store.KindStart, ID: c.id})

		res, err := s.runCampaign(ctx, c)
		cancel()

		// Finish the trace before the terminal event so subscribers that
		// observe "done" can already read it; the trace event precedes
		// "done", keeping "done" the final event of every campaign.
		var st *obs.StageTrace
		if err == nil && c.trace != nil {
			st = c.trace.Finish()
			res.Trace = st
			if werr := s.traceLog.Write(st); werr != nil {
				c.appendEvent("trace", 0, "trace log write failed: %v", werr)
			}
		}

		c.mu.Lock()
		switch {
		case err == nil:
			if st != nil {
				c.appendEventLocked("trace", 0, fmt.Sprintf("stage trace: %d stages, wall %.1fms",
					len(st.Stages), float64(st.WallUs)/1000))
			}
			c.appendEventLocked("done", 0, fmt.Sprintf("clean=%v digest=%s", res.Clean, res.Digest))
			c.finishLocked(StateDone, res, nil)
		case errors.Is(err, context.Canceled):
			c.appendEventLocked("cancel", 0, "canceled while running")
			c.finishLocked(StateCanceled, nil, err)
		default:
			c.appendEventLocked("fail", 0, err.Error())
			c.finishLocked(StateFailed, nil, err)
		}
		c.mu.Unlock()

		s.journalFinish(c.id, res, err)

		s.mu.Lock()
		s.running--
		delete(s.runStart, c.id)
		s.reg.Gauge("workers_busy").Add(-1)
		switch {
		case err == nil:
			s.done++
		case errors.Is(err, context.Canceled):
			s.cancels++
		default:
			s.failed++
		}
		s.pruneLocked()
		s.mu.Unlock()
	}
}

// goldenArtifact bundles everything derivable from a design name alone:
// the mapped golden netlist (shared read-only), its content fingerprint,
// and the compiled simulator program (forked per campaign).
type goldenArtifact struct {
	golden *netlist.Netlist
	fp     string
	mach   *sim.Machine
}

// hitWord renders a cache outcome for event messages without counting it
// (used when one cached artifact backs several pipeline stages).
func hitWord(hit bool) string {
	if hit {
		return "cache hit"
	}
	return "built"
}

// leaseWord renders a layout-pool checkout outcome.
func leaseWord(reused bool) string {
	if reused {
		return "pooled copy reused, router warm"
	}
	return "working copy cloned"
}

// traceStore adapts the artifact cache — backed, when the service is
// durable, by the store's spilled trace blobs — to debug.TraceStore. A
// cache miss consults the blob index before giving up, so a restarted
// daemon re-serves golden traces it computed in a previous life.
type traceStore struct{ s *Service }

func (t traceStore) GetTrace(key string) (*sim.Trace, bool) {
	if v, ok := t.s.cache.Get(key); ok {
		if tr, ok := v.(*sim.Trace); ok {
			return tr, true
		}
	}
	if tr, ok := t.s.loadSpilledTrace(key); ok {
		t.s.cache.Put(key, tr, traceBytes(tr))
		return tr, true
	}
	return nil, false
}

func (t traceStore) PutTrace(key string, tr *sim.Trace) {
	t.s.cache.Put(key, tr, traceBytes(tr))
	t.s.spillTrace(key, tr)
}

// runCampaign executes the full pipeline for one campaign, sharing every
// cacheable artifact through the content-addressed cache.
func (s *Service) runCampaign(ctx context.Context, c *campaign) (*Result, error) {
	start := time.Now()
	spec := c.spec
	tr := c.trace
	hits, misses := 0, 0
	count := func(hit bool) string {
		if hit {
			hits++
			tr.Add("cache-hits", 1)
			return "cache hit"
		}
		misses++
		tr.Add("cache-misses", 1)
		return "built"
	}

	info, err := bench.ByName(spec.Design)
	if err != nil {
		return nil, err
	}

	// 1. Golden artifact: the technology-mapped netlist (shared
	// read-only), its content fingerprint, and the compiled simulator
	// program (forked per campaign: the fork shares the program, owns the
	// state). The bench catalog is static and deterministic, so the
	// design name plus the lane width addresses all three — warm
	// campaigns skip the netlist rebuild and fingerprint hashing
	// entirely, and campaigns at different sim_lanes never share a
	// program (the value plane is laid out per width).
	v, hit, err := s.cache.GetOrBuild(fmt.Sprintf("golden/%s/l%d", spec.Design, spec.SimLanes), func() (any, int64, error) {
		// The cold-path builds are spans on the building campaign's
		// trace; campaigns served from cache record none (the cache-hit
		// counter tells that story instead). A durable service tries the
		// spilled BLIF first — parsing it replaces synth+techmap and is
		// digest-safe because the spill was round-trip-verified when
		// written (persist.go).
		var mapped *netlist.Netlist
		if nl, ok := s.loadSpilledNetlist(spec.Design); ok {
			ssp := tr.Start(obs.StageSynth)
			ssp.Add("netlist-spill-hit", 1)
			mapped = nl
			ssp.End()
		} else {
			ssp := tr.Start(obs.StageSynth)
			nl := info.Build()
			ssp.End()
			msp := tr.Start(obs.StageMap)
			m, err := synth.TechMap(nl)
			msp.End()
			if err != nil {
				return nil, 0, err
			}
			mapped = m
			s.spillNetlist(spec.Design, mapped)
		}
		csp := tr.Start(obs.StageCompile)
		mach, err := sim.CompileWidth(mapped, spec.SimLanes/64)
		csp.End()
		if err != nil {
			return nil, 0, err
		}
		ga := &goldenArtifact{golden: mapped, fp: mapped.Fingerprint(), mach: mach}
		return ga, netlistBytes(mapped) + machineBytes(mach), nil
	})
	if err != nil {
		return nil, fmt.Errorf("synth %s: %w", spec.Design, err)
	}
	ga := v.(*goldenArtifact)
	golden := ga.golden
	goldenMach := ga.mach.Fork()
	c.appendEvent("synth", 0, "golden mapped netlist %s (%s)", ga.fp[:8], count(hit))
	c.appendEvent("compile", 0, "golden simulator program (%s)", hitWord(hit))
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Faultscan campaigns branch off here: they need no injection, no
	// layout and no baseline — just the golden artifact and the
	// lane-parallel mutant engine.
	if spec.Kind == KindFaultScan {
		res, err := s.runFaultScan(ctx, c, ga, count)
		if err != nil {
			return nil, err
		}
		res.CacheHits = hits
		res.CacheMisses = misses
		res.WallMs = float64(time.Since(start).Microseconds()) / 1000
		res.Digest = res.digest()
		return res, nil
	}

	// 2. Implementation under test: golden + injected design error.
	impl := golden.Clone()
	inj, err := faults.InjectRandom(impl, spec.FaultSeed)
	if err != nil {
		return nil, fmt.Errorf("inject: %w", err)
	}
	c.appendEvent("inject", 0, "design error: %v", inj)
	implFP := impl.Fingerprint()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// 3. Pristine tiled layout pool: the expensive synth/place/route
	// artifact, cached by content address + physical-design knobs. The
	// pool hands each campaign an exclusive transactional working copy
	// (warmed persistent router included) and rolls it back on check-in
	// — the per-campaign Layout.Clone only happens when concurrency
	// outgrows the free list.
	lkey := spec.layoutKey(implFP)
	v, hit, err = s.cache.GetOrBuild(lkey, func() (any, int64, error) {
		// The initial build records place/route spans on the building
		// campaign's trace; BuildMapped detaches it before the layout is
		// stored, so the cached pristine never outlives this trace.
		cs := core.Spec{
			Overhead: spec.Overhead, TileFrac: spec.TileFrac,
			Seed: spec.Seed, PlaceEffort: spec.PlaceEffort,
			Obs: tr,
		}
		if spec.Overlay {
			cs.OverlayReserve = overlay.DefaultReserve
		}
		l, err := core.BuildMapped(impl.Clone(), cs)
		if err != nil {
			return nil, 0, err
		}
		p := newLayoutPool(l)
		if spec.Overlay {
			// The overlay trunks are routed into the pristine layout
			// before any campaign clones it, so every working copy
			// inherits the locked wiring; the plan itself is shared
			// read-only.
			plan, err := overlay.Build(l, overlay.DefaultChannels)
			if err != nil {
				return nil, 0, err
			}
			p.plan = plan
			p.digest = l.StateDigest()
		}
		// Charge the pool's worst-case residency: the pristine
		// reference plus the bounded free list of rolled-back copies.
		return p, (1 + maxPoolFree) * layoutBytes(l), nil
	})
	if err != nil {
		return nil, fmt.Errorf("layout %s: %w", spec.Design, err)
	}
	pool := v.(*layoutPool)
	layout, lease, reused := pool.checkout()
	// Attach the campaign trace to the working copy so every incremental
	// place/route/sta under ApplyDelta lands in it; detach before the
	// copy returns to the pool's free list.
	layout.SetObs(tr)
	defer func() {
		layout.SetObs(nil)
		pool.checkin(layout, lease)
	}()
	c.appendEvent("place", 0, "tiled layout %v, %d tiles (%s; %s)", layout.Dev, len(layout.Tiles), count(hit), leaseWord(reused))
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// 4. Full re-P&R baseline of the pristine layout — the non-tiled
	// comparison point, identical for every campaign on this layout.
	v, hit, err = s.cache.GetOrBuild(lkey+"/fullpr", func() (any, int64, error) {
		eff, err := pool.pristine.FullRePlaceRoute(spec.Seed + 1000)
		return eff, 64, err
	})
	if err != nil {
		return nil, fmt.Errorf("baseline %s: %w", spec.Design, err)
	}
	fullEffort := v.(core.Effort)
	c.appendEvent("baseline", 0, "full re-P&R baseline (%s)", count(hit))

	// 5. The debugging loop, with context, progress and the golden-trace
	// cache threaded through.
	sess, err := debug.NewSession(golden, layout, spec.Seed)
	if err != nil {
		return nil, err
	}
	sess.Ctx = ctx
	sess.Traces = traceStore{s}
	sess.SimWidth = spec.SimLanes / 64
	sess.Obs = tr
	sess.SetGoldenMachine(goldenMach)
	sess.SetGoldenFingerprint(ga.fp)
	sess.Progress = func(ev debug.Event) {
		c.appendEvent(ev.Stage, ev.Round, "%s", ev.Msg)
	}
	if spec.Overlay && pool.plan != nil {
		// Bind a per-campaign tap selector to the working copy and turn
		// on the causal-chain localizer; both ride the campaign's layout
		// transaction, so the pool check-in rollback restores a parked
		// selection. Non-overlay campaigns keep Causal off so their
		// historical round counts and digests are unchanged.
		sess.Overlay = pool.plan.NewSelector(layout)
		sess.Causal = true
		c.appendEvent("overlay", 0, "debug overlay: %d channels, %d taps, trunk wirelength %d",
			pool.plan.Channels, pool.plan.Taps, pool.plan.TrunkLen)
	}

	// 5b. Optional fault dictionary: built once per (design, detection
	// params) and cached, it lets localization skip probe insertion for
	// errors it can name from the PO-mismatch signature alone.
	if spec.UseDict {
		dkey := fmt.Sprintf("dict/%s/w%d-c%d-s%d", ga.fp, spec.Words, spec.Cycles, spec.Seed)
		v, hit, err = s.cache.GetOrBuild(dkey, func() (any, int64, error) {
			dsp := tr.Start(obs.StageLocalizeDict)
			defer dsp.End()
			d, err := debug.BuildFaultDict(ga.mach, spec.Words, spec.Cycles, spec.Seed)
			if err != nil {
				return nil, 0, err
			}
			dsp.Add("dict-faults", int64(d.Faults))
			return d, d.MemoryFootprint(), nil
		})
		if err != nil {
			return nil, fmt.Errorf("dict %s: %w", spec.Design, err)
		}
		sess.Dict = v.(*debug.FaultDict)
		c.appendEvent("dict", 0, "fault dictionary: %d/%d faults detectable, %d signatures (%s)",
			sess.Dict.Detected, sess.Dict.Faults, sess.Dict.Signatures(), count(hit))
	}

	var res *Result
	if spec.Kind == KindRepair {
		res, err = s.runRepairCampaign(ctx, c, sess, impl, implFP, spec, count)
		if err != nil {
			return nil, err
		}
		res.Design = spec.Design
		res.Injected = inj.String()
	} else {
		rep, err := sess.RunLoopCore(spec.MaxIters, spec.Words, spec.Cycles, spec.MaxRounds, spec.ProbesPerRound)
		if err != nil {
			return nil, err
		}
		res = &Result{
			Design:     spec.Design,
			Injected:   inj.String(),
			Detected:   rep.Iterations > 0,
			Clean:      rep.Clean,
			Iterations: rep.Iterations,
		}
		for _, diag := range rep.Diagnoses {
			res.Rounds += diag.Rounds
			res.ProbesInserted += diag.Probes
			if diag.Dict {
				res.DictResolved++
			}
		}
		for _, cor := range rep.Corrections {
			res.Fixed = append(res.Fixed, cor.Fixed...)
			if cor.Repaired {
				res.Repaired++
				res.RepairKind = cor.RepairKind
				res.Candidates += cor.Candidates
				res.Survivors += cor.Survivors
				res.CandidateBatches += cor.Batches
				res.ECOVerified = cor.ECOVerified
			} else {
				res.RepairFallback = true
			}
		}
	}

	if spec.Overlay {
		res.Overlay = true
		res.OverlaySwitches = sess.OverlaySwitches
		res.OverlayFallbacks = sess.OverlayFallbacks
	}
	res.TileWork = sess.TileEffort.Work()
	res.FullWork = fullEffort.Work()
	if updates := res.Rounds + res.Iterations; updates > 0 && res.TileWork > 0 {
		res.SpeedupPerIter = res.FullWork / (res.TileWork / float64(updates))
	}
	res.CacheHits = hits
	res.CacheMisses = misses
	res.WallMs = float64(time.Since(start).Microseconds()) / 1000
	res.Digest = res.digest()
	return res, nil
}

// ---------------------------------------------------------- size estimates
//
// The cache's byte budget works on estimates: close enough to keep the
// resident set bounded, cheap enough to compute at insert time.

func netlistBytes(n *netlist.Netlist) int64 {
	b := int64(128)
	for i := range n.Cells {
		b += 96 + int64(len(n.Cells[i].Fanin))*8 + int64(len(n.Cells[i].Func.Cubes))*16 + int64(len(n.Cells[i].Name))
	}
	for i := range n.Nets {
		b += 32 + int64(len(n.Nets[i].Name))
	}
	return b
}

func machineBytes(m *sim.Machine) int64 {
	st := m.MemoryFootprint()
	return st
}

func layoutBytes(l *core.Layout) int64 {
	b := netlistBytes(l.NL) + 256
	b += int64(len(l.Packed.CLBs)) * 64
	b += int64(len(l.CLBLoc)) * 16
	b += int64(len(l.PadLoc)) * 24
	for _, rn := range l.Routes {
		b += 48 + int64(len(rn.Pins))*16 + int64(len(rn.Route))*4
	}
	return b
}

func traceBytes(tr *sim.Trace) int64 {
	return 64 + int64(len(tr.Outs)+len(tr.ProbeVals)+len(tr.States))*8
}
