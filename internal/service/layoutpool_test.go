package service

import (
	"context"
	"testing"
	"time"

	"fpgadbg/internal/core"
	"fpgadbg/internal/synth"

	"fpgadbg/internal/bench"
)

// TestLayoutPoolCheckoutRollback exercises the pool directly: a mutated
// working copy must come back pristine, reuse must skip the clone, and a
// leaked transaction must get the copy discarded.
func TestLayoutPoolCheckoutRollback(t *testing.T) {
	info, err := bench.ByName("9sym")
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := synth.TechMap(info.Build())
	if err != nil {
		t.Fatal(err)
	}
	l, err := core.BuildMapped(mapped, core.Spec{Seed: 1, PlaceEffort: 0.3, TileFrac: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	pool := newLayoutPool(l)

	c1, lease1, reused := pool.checkout()
	if reused {
		t.Fatal("first checkout cannot be a reuse")
	}
	if c1 == pool.pristine {
		t.Fatal("pool handed out the pristine reference")
	}
	// Mutate the working copy like a campaign would.
	if _, err := c1.ApplyDelta(core.Delta{}); err != nil {
		t.Fatal(err)
	}
	pool.checkin(c1, lease1)

	c2, lease2, reused := pool.checkout()
	if !reused {
		t.Fatal("second checkout should reuse the rolled-back copy")
	}
	if c2 != c1 {
		t.Fatal("free list returned a different copy")
	}
	if c2.StateDigest() != pool.digest {
		t.Fatal("reused copy is not pristine")
	}

	// A leaked inner transaction poisons the lease: the copy must be
	// discarded, not recycled.
	_ = c2.Checkpoint()
	pool.checkin(c2, lease2)
	if clones, reuses := pool.stats(); clones != 1 || reuses != 1 {
		t.Fatalf("stats = %d clones, %d reuses", clones, reuses)
	}
	c3, _, reused := pool.checkout()
	if reused || c3 == c2 {
		t.Fatal("poisoned copy returned to the pool")
	}
}

// TestPooledCampaignsStayDeterministic runs the same campaign spec
// repeatedly on one service: the second run must reuse the rolled-back
// pooled layout and produce the identical digest.
func TestPooledCampaignsStayDeterministic(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var digest string
	for i := 0; i < 3; i++ {
		id, err := svc.Submit(fastSpec("9sym", 1))
		if err != nil {
			t.Fatal(err)
		}
		res, err := svc.Wait(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			digest = res.Digest
			continue
		}
		if res.Digest != digest {
			t.Fatalf("run %d digest %s != first %s", i, res.Digest, digest)
		}
		if res.CacheMisses != 0 {
			t.Fatalf("warm run %d still missed the cache %d times", i, res.CacheMisses)
		}
	}
}
