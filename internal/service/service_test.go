package service

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// fastSpec is a campaign small enough to run in tens of milliseconds.
func fastSpec(design string, faultSeed int64) Spec {
	return Spec{
		Design: design, FaultSeed: faultSeed,
		PlaceEffort: 0.3, TileFrac: 0.25, Words: 4, Cycles: 2,
	}
}

func TestSubmitValidation(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	if _, err := svc.Submit(Spec{Design: "no-such-design"}); err == nil {
		t.Fatal("unknown design accepted")
	} else if want := "9sym"; !containsStr(err.Error(), want) {
		t.Fatalf("error %q does not list valid designs", err)
	}
	if _, err := svc.Submit(Spec{Design: "9sym", Words: -1}); err == nil {
		t.Fatal("negative words accepted")
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestCampaignLifecycle(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	id, err := svc.Submit(fastSpec("9sym", 1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := svc.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected || !res.Clean || res.Iterations != 1 {
		t.Fatalf("unexpected result: %+v", res)
	}
	if res.Digest == "" || res.TileWork <= 0 || res.FullWork <= res.TileWork {
		t.Fatalf("effort accounting wrong: %+v", res)
	}
	st, err := svc.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Result == nil || st.Events == 0 {
		t.Fatalf("status = %+v", st)
	}

	// The event log tells the whole story in order.
	events, live, unsub, err := svc.Events(id)
	if err != nil {
		t.Fatal(err)
	}
	defer unsub()
	if _, ok := <-live; ok {
		t.Fatal("live channel of finished campaign should be closed")
	}
	wantStages := []string{"queue", "start", "synth", "compile", "inject", "place", "baseline"}
	for i, stage := range wantStages {
		if i >= len(events) || events[i].Stage != stage {
			t.Fatalf("event %d = %+v, want stage %q (events: %+v)", i, events[i], stage, events)
		}
	}
	for i, ev := range events {
		if ev.Seq != i+1 {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
	if last := events[len(events)-1]; last.Stage != "done" {
		t.Fatalf("final event %+v, want done", last)
	}
}

func TestArtifactCacheAcrossCampaigns(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	ctx := context.Background()

	id1, err := svc.Submit(fastSpec("9sym", 2))
	if err != nil {
		t.Fatal(err)
	}
	res1, err := svc.Wait(ctx, id1)
	if err != nil {
		t.Fatal(err)
	}
	if res1.CacheMisses == 0 {
		t.Fatalf("cold campaign reported no artifact builds: %+v", res1)
	}

	// Identical spec: synth, compile, layout and baseline all hit.
	id2, err := svc.Submit(fastSpec("9sym", 2))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := svc.Wait(ctx, id2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.CacheMisses != 0 || res2.CacheHits != res1.CacheHits+res1.CacheMisses {
		t.Fatalf("warm campaign should be all hits: cold %d/%d, warm %d/%d",
			res1.CacheHits, res1.CacheMisses, res2.CacheHits, res2.CacheMisses)
	}
	if res1.Digest != res2.Digest {
		t.Fatalf("cache changed the outcome: %s vs %s", res1.Digest, res2.Digest)
	}

	// Different fault seed on the same design: the golden artifact
	// (mapped netlist + compiled simulator) hits, the layout and baseline
	// miss (different implementation content).
	id3, err := svc.Submit(fastSpec("9sym", 3))
	if err != nil {
		t.Fatal(err)
	}
	res3, err := svc.Wait(ctx, id3)
	if err != nil {
		t.Fatal(err)
	}
	if res3.CacheHits < 1 || res3.CacheMisses == 0 {
		t.Fatalf("sibling campaign should share synth artifacts: %+v", res3)
	}
}

func TestCancelQueued(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	// Occupy the single worker so the second campaign stays queued.
	blocker, err := svc.Submit(fastSpec("styr", 3))
	if err != nil {
		t.Fatal(err)
	}
	victim, err := svc.Submit(fastSpec("c880", 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Cancel(victim); err != nil {
		t.Fatal(err)
	}
	st, err := svc.Status(victim)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", st.State)
	}
	if _, err := svc.Wait(context.Background(), victim); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait err = %v, want context.Canceled", err)
	}
	// The blocker is unaffected.
	if res, err := svc.Wait(context.Background(), blocker); err != nil || !res.Clean {
		t.Fatalf("blocker: %v %+v", err, res)
	}
	// The canceled campaign never ran.
	events, _, unsub, _ := svc.Events(victim)
	defer unsub()
	for _, ev := range events {
		if ev.Stage == "start" {
			t.Fatalf("canceled-while-queued campaign ran: %+v", events)
		}
	}
}

func TestCancelRunning(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	id, err := svc.Submit(fastSpec("styr", 3)) // ~400ms of work
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the campaign to actually start, then cancel mid-flight.
	_, live, unsub, err := svc.Events(id)
	if err != nil {
		t.Fatal(err)
	}
	defer unsub()
	deadline := time.After(30 * time.Second)
	started := false
	for !started {
		select {
		case ev, ok := <-live:
			if !ok {
				t.Fatal("campaign finished before it visibly started")
			}
			if ev.Stage == "start" {
				started = true
			}
		case <-deadline:
			t.Fatal("campaign never started")
		}
	}
	if err := svc.Cancel(id); err != nil {
		t.Fatal(err)
	}
	_, err = svc.Wait(context.Background(), id)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait err = %v, want context.Canceled", err)
	}
	st, _ := svc.Status(id)
	if st.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", st.State)
	}
}

func TestPriorityOrdering(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	// While the blocker holds the only worker, a high-priority late
	// submission must overtake a low-priority earlier one.
	blocker, _ := svc.Submit(fastSpec("styr", 3))
	low, err := svc.Submit(fastSpec("9sym", 1))
	if err != nil {
		t.Fatal(err)
	}
	hiSpec := fastSpec("9sym", 2)
	hiSpec.Priority = 10
	high, err := svc.Submit(hiSpec)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, id := range []string{blocker, low, high} {
		if _, err := svc.Wait(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	stLow, _ := svc.Status(low)
	stHigh, _ := svc.Status(high)
	if !stHigh.Started.Before(stLow.Started) {
		t.Fatalf("high priority started %v, low %v — wrong order",
			stHigh.Started, stLow.Started)
	}
}

// TestConcurrentSubmissionsDeterministic is the -race workhorse: a burst
// of concurrent campaigns over shared cached artifacts must produce
// exactly the results a serial service produces.
func TestConcurrentSubmissionsDeterministic(t *testing.T) {
	specs := []Spec{
		fastSpec("9sym", 1), fastSpec("9sym", 2), fastSpec("9sym", 3),
		fastSpec("c880", 1), fastSpec("c880", 2), fastSpec("c880", 3),
	}
	const repeats = 4 // 24 campaigns over 8 workers

	// Serial reference.
	ref := make(map[string]string) // spec key -> digest
	serial := New(Config{Workers: 1})
	for _, sp := range specs {
		id, err := serial.Submit(sp)
		if err != nil {
			t.Fatal(err)
		}
		res, err := serial.Wait(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		ref[specKey(sp)] = res.Digest
	}
	serial.Close()

	// Concurrent burst, every spec repeated.
	svc := New(Config{Workers: 8})
	defer svc.Close()
	type sub struct {
		id  string
		key string
	}
	var subs []sub
	for r := 0; r < repeats; r++ {
		for _, sp := range specs {
			id, err := svc.Submit(sp)
			if err != nil {
				t.Fatal(err)
			}
			subs = append(subs, sub{id: id, key: specKey(sp)})
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	for _, sb := range subs {
		res, err := svc.Wait(ctx, sb.id)
		if err != nil {
			t.Fatal(err)
		}
		if res.Digest != ref[sb.key] {
			t.Fatalf("campaign %s (%s) digest %s != serial reference %s",
				sb.id, sb.key, res.Digest, ref[sb.key])
		}
	}
	st := svc.Stats()
	if st.Done != int64(len(subs)) || st.Failed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Cache.Hits == 0 {
		t.Fatal("concurrent burst never hit the artifact cache")
	}
	if st.QueueDepth != 0 || st.RunningAge != 0 {
		t.Fatalf("drained service still reports in-flight work: %+v", st)
	}
	if st.ByKind[KindDebug] != int64(len(subs)) {
		t.Fatalf("per-kind accounting = %v, want %d debug", st.ByKind, len(subs))
	}
}

func specKey(sp Spec) string {
	return fmt.Sprintf("%s/%d", sp.Design, sp.FaultSeed)
}

func TestRetentionPrunesTerminalCampaigns(t *testing.T) {
	svc := New(Config{Workers: 1, RetainCampaigns: 2})
	defer svc.Close()
	ctx := context.Background()
	var ids []string
	for i := 0; i < 4; i++ {
		id, err := svc.Submit(fastSpec("9sym", 1))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		if _, err := svc.Wait(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(svc.List()); got > 2 {
		t.Fatalf("retention budget 2 but %d campaigns retained", got)
	}
	if _, err := svc.Status(ids[0]); err == nil {
		t.Fatal("oldest campaign should have been pruned")
	}
	if _, err := svc.Status(ids[3]); err != nil {
		t.Fatalf("newest campaign pruned: %v", err)
	}
}

func TestCloseCancelsQueued(t *testing.T) {
	svc := New(Config{Workers: 1})
	blocker, _ := svc.Submit(fastSpec("styr", 3))
	queued, _ := svc.Submit(fastSpec("c880", 2))
	svc.Close()
	stB, _ := svc.Status(blocker)
	stQ, _ := svc.Status(queued)
	if stQ.State != StateCanceled {
		t.Fatalf("queued campaign after Close: %s", stQ.State)
	}
	if !stB.State.Terminal() {
		t.Fatalf("running campaign not terminal after Close: %s", stB.State)
	}
}
