package service

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"fpgadbg/internal/store"
)

// runToDigest runs one campaign on a fresh throwaway service and returns
// its result digest — the uninterrupted reference every recovery test
// compares against.
func runToDigest(t *testing.T, spec Spec) string {
	t.Helper()
	svc := New(Config{Workers: 1})
	defer svc.Close()
	id, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := svc.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	return res.Digest
}

func openDisk(t *testing.T, dir string) *store.DiskStore {
	t.Helper()
	d, err := store.OpenDisk(dir, store.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestPersistLifecycleJournaled pins the journal contents of one full
// campaign life: submit → start → done, with the result replayable.
func TestPersistLifecycleJournaled(t *testing.T) {
	dir := t.TempDir()
	svc, err := Open(Config{Workers: 1, Store: openDisk(t, dir)})
	if err != nil {
		t.Fatal(err)
	}
	id, err := svc.Submit(fastSpec("9sym", 1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := svc.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	svc.Close() // closes the store too

	d := openDisk(t, dir)
	defer d.Close()
	rec, err := d.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Campaigns) != 1 {
		t.Fatalf("journaled campaigns = %+v", rec.Campaigns)
	}
	cs := rec.Campaigns[0]
	if cs.ID != id || cs.State != "done" {
		t.Fatalf("journaled state = %s/%s, want %s/done", cs.ID, cs.State, id)
	}
	var r Result
	if err := json.Unmarshal(cs.Result, &r); err != nil {
		t.Fatalf("journaled result unreadable: %v", err)
	}
	if r.Digest != res.Digest {
		t.Fatalf("journaled digest %s, want %s", r.Digest, res.Digest)
	}
}

// TestPersistRestartRestoresTerminal reopens a store full of finished
// campaigns: they must come back queryable with results intact, and new
// submissions must continue the ID chain instead of colliding.
func TestPersistRestartRestoresTerminal(t *testing.T) {
	dir := t.TempDir()
	svc, err := Open(Config{Workers: 2, Store: openDisk(t, dir)})
	if err != nil {
		t.Fatal(err)
	}
	spec := fastSpec("9sym", 2)
	id, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := svc.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	svc.Close()

	svc2, err := Open(Config{Workers: 2, Store: openDisk(t, dir)})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	st, err := svc2.Status(id)
	if err != nil {
		t.Fatalf("restored campaign lost: %v", err)
	}
	if st.State != StateDone || st.Result == nil || st.Result.Digest != want.Digest {
		t.Fatalf("restored status = %+v", st)
	}
	id2, err := svc2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id {
		t.Fatalf("restarted service reissued campaign ID %s", id)
	}
	if _, err := svc2.Wait(context.Background(), id2); err != nil {
		t.Fatal(err)
	}
}

// TestPersistRequeueRunsToSameDigest is the headline resume-determinism
// differential: campaigns journaled as submitted (their daemon died
// before finishing them) must re-run after Open and land on digests
// bit-identical to uninterrupted runs — across two catalog designs.
func TestPersistRequeueRunsToSameDigest(t *testing.T) {
	specs := []Spec{fastSpec("9sym", 3), fastSpec("styr", 4)}
	want := make([]string, len(specs))
	for i, sp := range specs {
		want[i] = runToDigest(t, sp)
	}

	dir := t.TempDir()
	d := openDisk(t, dir)
	ids := make([]string, len(specs))
	for i, sp := range specs {
		sp = sp.withDefaults()
		specJSON, err := json.Marshal(sp)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = fmt.Sprintf("c%06d", i+1)
		if _, err := d.Append(store.Record{Kind: store.KindSubmit, ID: ids[i], Spec: specJSON}); err != nil {
			t.Fatal(err)
		}
	}
	// The second campaign had already been picked up when the "crash"
	// hit — a running campaign must requeue exactly like a queued one.
	if _, err := d.Append(store.Record{Kind: store.KindStart, ID: ids[1]}); err != nil {
		t.Fatal(err)
	}
	d.Close()

	svc, err := Open(Config{Workers: 2, Store: openDisk(t, dir)})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if got := svc.Stats().Recovered; got != int64(len(specs)) {
		t.Fatalf("recovered = %d, want %d", got, len(specs))
	}
	for i, id := range ids {
		res, err := svc.Wait(context.Background(), id)
		if err != nil {
			t.Fatalf("requeued %s: %v", id, err)
		}
		if res.Digest != want[i] {
			t.Fatalf("requeued %s digest %s, want %s (resume is not deterministic)", id, res.Digest, want[i])
		}
		if res.Trace != nil && res.Trace.Stage("resume") == nil {
			t.Fatalf("requeued %s trace has no resume stage: %+v", id, res.Trace.Stages)
		}
	}
}

// TestPersistCrashAtEveryRecordBoundary is the service-level kill sweep:
// take the journal a finished two-campaign daemon wrote, truncate it at
// every record boundary, and reopen a service on each prefix. Whatever
// survives must either already be terminal with the reference digest or
// re-run to it. No prefix may wedge the daemon.
func TestPersistCrashAtEveryRecordBoundary(t *testing.T) {
	specs := []Spec{fastSpec("9sym", 5), fastSpec("styr", 6)}
	want := map[string]string{}
	dir := t.TempDir()
	svc, err := Open(Config{Workers: 1, Store: openDisk(t, dir)})
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, len(specs))
	for i, sp := range specs {
		ids[i], err = svc.Submit(sp)
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range ids {
		res, err := svc.Wait(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		want[id] = res.Digest
	}
	svc.Close()

	seg := filepath.Join(dir, "journal", store.SegName(1))
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	boundaries := store.RecordBoundaries(raw)
	if len(boundaries) < 5 {
		t.Fatalf("reference journal too small: boundaries %v", boundaries)
	}
	blobs := filepath.Join(dir, "blobs")
	for _, cut := range boundaries {
		cutDir := t.TempDir()
		if err := os.MkdirAll(filepath.Join(cutDir, "journal"), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(cutDir, "journal", store.SegName(1)), raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		// Blobs survive crashes independently of the journal (temp+rename
		// publication), so every cut sees the full blob area.
		if err := os.CopyFS(filepath.Join(cutDir, "blobs"), os.DirFS(blobs)); err != nil && !os.IsNotExist(err) {
			t.Fatal(err)
		}
		cutSvc, err := Open(Config{Workers: 2, Store: openDisk(t, cutDir)})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		for id, digest := range want {
			st, err := cutSvc.Status(id)
			if err != nil {
				continue // submit record fell past the cut: legitimately gone
			}
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			res, err := cutSvc.Wait(ctx, id)
			cancel()
			if err != nil {
				t.Fatalf("cut %d: campaign %s (restored as %s): %v", cut, id, st.State, err)
			}
			if res.Digest != digest {
				t.Fatalf("cut %d: campaign %s digest %s, want %s", cut, id, res.Digest, digest)
			}
		}
		cutSvc.Close()
	}
}

// TestPersistWarmResumeHitsSpill proves the blob spill pays off: a
// restarted daemon re-running a campaign it has seen before serves the
// mapped netlist from the store instead of re-synthesizing — and still
// lands on the same digest.
func TestPersistWarmResumeHitsSpill(t *testing.T) {
	spec := fastSpec("styr", 7)
	want := runToDigest(t, spec)

	dir := t.TempDir()
	svc, err := Open(Config{Workers: 1, Store: openDisk(t, dir)})
	if err != nil {
		t.Fatal(err)
	}
	id, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Wait(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	svc.Close()

	svc2, err := Open(Config{Workers: 1, Store: openDisk(t, dir)})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	id2, err := svc2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := svc2.Wait(context.Background(), id2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Digest != want {
		t.Fatalf("warm resume digest %s, want %s", res.Digest, want)
	}
	st := svc2.Stats()
	if st.SpillHits == 0 {
		t.Fatalf("warm resume never hit the spill (stats %+v)", st)
	}
}

// TestPersistMemDiskDigestParity runs the same campaign against an
// in-memory store and a disk store: identical digests, identical
// journaled final states. The two Store implementations must be
// interchangeable.
func TestPersistMemDiskDigestParity(t *testing.T) {
	spec := fastSpec("9sym", 8)
	stores := map[string]store.Store{
		"mem":  store.NewMem(),
		"disk": openDisk(t, t.TempDir()),
	}
	digests := map[string]string{}
	for name, st := range stores {
		svc, err := Open(Config{Workers: 1, Store: st})
		if err != nil {
			t.Fatal(err)
		}
		id, err := svc.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := svc.Wait(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		digests[name] = res.Digest
		svc.Close()
	}
	if digests["mem"] != digests["disk"] {
		t.Fatalf("mem digest %s != disk digest %s", digests["mem"], digests["disk"])
	}
}

// TestPersistCancelSurvivesRestart pins the shutdown contract: an
// explicit Cancel is durable, while campaigns merely queued at Close
// come back requeued.
func TestPersistCancelSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	svc, err := Open(Config{Workers: -1, Store: openDisk(t, dir)})
	if err != nil {
		t.Fatal(err)
	}
	// Workers < 0 keeps everything queued so the test controls fates.
	canceled, err := svc.Submit(fastSpec("9sym", 9))
	if err != nil {
		t.Fatal(err)
	}
	kept, err := svc.Submit(fastSpec("styr", 10))
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Cancel(canceled); err != nil {
		t.Fatal(err)
	}
	svc.Close()

	svc2, err := Open(Config{Workers: -1, Store: openDisk(t, dir)})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if st, _ := svc2.Status(canceled); st.State != StateCanceled {
		t.Fatalf("canceled campaign restored as %s", st.State)
	}
	if st, _ := svc2.Status(kept); st.State != StateQueued {
		t.Fatalf("queued campaign restored as %s, want requeued", st.State)
	}
}

// failingStore is a MemStore whose journal appends always fail — the
// degraded-disk path (disk full, sync errors). Regression guard for a
// self-deadlock where counting the append error retook s.mu while
// Submit's caller held it, wedging the whole API.
type failingStore struct{ *store.MemStore }

func (failingStore) Append(store.Record) (uint64, error) {
	return 0, fmt.Errorf("injected journal failure")
}

func TestJournalErrorDoesNotDeadlockSubmit(t *testing.T) {
	svc, err := Open(Config{Workers: 1, Store: failingStore{store.NewMem()}})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	type sub struct {
		id  string
		err error
	}
	ch := make(chan sub, 1)
	go func() {
		id, serr := svc.Submit(fastSpec("9sym", 1))
		ch <- sub{id, serr}
	}()
	var got sub
	select {
	case got = <-ch:
	case <-time.After(30 * time.Second):
		t.Fatal("Submit deadlocked on a failing journal")
	}
	if got.err != nil {
		t.Fatalf("Submit on a degraded store must still accept: %v", got.err)
	}
	// The campaign still runs to completion, and the API stays live.
	if _, err := svc.Wait(context.Background(), got.id); err != nil {
		t.Fatal(err)
	}
	if errs := svc.Stats().JournalErrors; errs == 0 {
		t.Fatal("JournalErrors = 0, want the failed appends counted")
	}
}
