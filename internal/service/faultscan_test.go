package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"fpgadbg/internal/sim"
)

func scanSpec(design string) Spec {
	return Spec{Design: design, Kind: KindFaultScan, Patterns: 32, Cycles: 2}
}

func TestFaultScanCampaign(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	id, err := svc.Submit(scanSpec("9sym"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := svc.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultsTotal == 0 || res.FaultsDetected == 0 {
		t.Fatalf("scan found nothing: %+v", res)
	}
	if res.FaultBatches != (res.FaultsTotal+63)/64 {
		t.Fatalf("batch accounting wrong: %+v", res)
	}
	if res.FaultCoverage <= 0 || res.FaultCoverage > 1 || res.MeanLatencyCycles < 1 {
		t.Fatalf("implausible coverage/latency: %+v", res)
	}
	if res.TileWork != 0 || res.Iterations != 0 {
		t.Fatalf("faultscan ran loop stages: %+v", res)
	}

	// Identical spec → identical digest (throughput fields excluded).
	id2, err := svc.Submit(scanSpec("9sym"))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := svc.Wait(ctx, id2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Digest != res.Digest {
		t.Fatalf("faultscan not deterministic: %s vs %s", res.Digest, res2.Digest)
	}
	// Second campaign reuses the cached golden artifact.
	if res2.CacheHits == 0 {
		t.Fatalf("warm faultscan missed the golden artifact cache: %+v", res2)
	}
}

func TestFaultScanSpecValidation(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	if _, err := svc.Submit(Spec{Design: "9sym", Kind: "mutate-all-the-things"}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := svc.Submit(Spec{Design: "9sym", Kind: KindFaultScan, Patterns: -1}); err == nil {
		t.Fatal("negative patterns accepted")
	}
	if _, err := svc.Submit(Spec{Design: "9sym", Kind: KindFaultScan, SimLanes: 96}); err == nil {
		t.Fatal("non-multiple-of-64 sim_lanes accepted")
	}
	if _, err := svc.Submit(Spec{Design: "9sym", Kind: KindFaultScan, SimLanes: 64 * (sim.MaxWidth + 1)}); err == nil {
		t.Fatal("oversized sim_lanes accepted")
	}
}

// TestFaultScanWideLanes runs the same scan at the default 64 lanes and
// at 256 (a width-4 lane-vector program). The fault physics — universe
// size, detections, coverage, latency — must be bit-identical; only the
// batch accounting shrinks, and the compiled golden programs must not
// share a cache entry.
func TestFaultScanWideLanes(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	run := func(lanes int) *Result {
		sp := scanSpec("9sym")
		sp.SimLanes = lanes
		id, err := svc.Submit(sp)
		if err != nil {
			t.Fatal(err)
		}
		res, err := svc.Wait(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	narrow := run(0) // defaults to 64
	wide := run(256)
	if narrow.FaultsTotal != wide.FaultsTotal ||
		narrow.FaultsDetected != wide.FaultsDetected ||
		narrow.FaultCoverage != wide.FaultCoverage ||
		narrow.MeanLatencyCycles != wide.MeanLatencyCycles {
		t.Fatalf("wide scan changed the physics:\n 64: %+v\n256: %+v", narrow, wide)
	}
	if want := (wide.FaultsTotal + 255) / 256; wide.FaultBatches != want {
		t.Fatalf("wide batches = %d, want %d", wide.FaultBatches, want)
	}
	if narrow.FaultBatches <= wide.FaultBatches {
		t.Fatalf("wide scan did not shrink batches: %d vs %d", narrow.FaultBatches, wide.FaultBatches)
	}
	// Different widths compile different programs: the wide run may hit
	// the golden netlist parse but must miss on its own golden/…/l256
	// program entry.
	if wide.CacheMisses == 0 {
		t.Fatalf("wide campaign reused a narrow-width artifact: %+v", wide)
	}
}

// TestFaultScanConcurrent runs a mixed burst of faultscan and debug
// campaigns over a shared cache — the -race target for the new service
// path.
func TestFaultScanConcurrent(t *testing.T) {
	svc := New(Config{Workers: 4})
	defer svc.Close()
	designs := []string{"9sym", "styr", "c880"}
	var ids []string
	for i := 0; i < 3; i++ {
		for _, d := range designs {
			id, err := svc.Submit(scanSpec(d))
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
	}
	dbg := fastSpec("9sym", 1)
	dbg.UseDict = true
	id, err := svc.Submit(dbg)
	if err != nil {
		t.Fatal(err)
	}
	ids = append(ids, id)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	digests := make(map[string]string)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			res, err := svc.Wait(ctx, id)
			if err != nil {
				t.Errorf("%s: %v", id, err)
				return
			}
			st, _ := svc.Status(id)
			mu.Lock()
			defer mu.Unlock()
			key := st.Spec.Design + "/" + st.Spec.Kind
			if prev, ok := digests[key]; ok && prev != res.Digest {
				t.Errorf("%s: digest diverged under concurrency: %s vs %s", key, prev, res.Digest)
			}
			digests[key] = res.Digest
		}(id)
	}
	wg.Wait()
}

// TestFaultScanCancelWhileRunning cancels a long scan mid-flight; the
// per-batch context check must surface the cancellation.
func TestFaultScanCancelWhileRunning(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	// DES has the largest universe — thousands of batches at 256 patterns
	// keep it running long enough to cancel deterministically.
	id, err := svc.Submit(Spec{Design: "DES", Kind: KindFaultScan, Patterns: 256, Cycles: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until it actually runs, then cancel.
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := svc.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateRunning {
			break
		}
		if st.State.Terminal() {
			t.Fatalf("campaign finished before it could be canceled: %+v", st)
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := svc.Cancel(id); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := svc.Wait(ctx, id); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	st, err := svc.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", st.State)
	}
}

// TestUseDictCampaignSharesDictionary checks that debug campaigns with
// UseDict complete cleanly and share one cached dictionary per design.
func TestUseDictCampaignSharesDictionary(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var first *Result
	for seed := int64(1); seed <= 2; seed++ {
		sp := fastSpec("9sym", seed)
		sp.UseDict = true
		id, err := svc.Submit(sp)
		if err != nil {
			t.Fatal(err)
		}
		res, err := svc.Wait(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Clean {
			t.Fatalf("seed %d: loop did not converge: %+v", seed, res)
		}
		if first == nil {
			first = res
		}
	}
	// The dictionary is keyed by design + detection params: the second
	// campaign must have hit it (plus golden artifact and layout misses
	// differ per fault seed, so just require more hits than the cold run).
	stats := svc.Cache().Stats()
	if stats.Hits == 0 {
		t.Fatalf("no cache hits across UseDict campaigns: %+v", stats)
	}
}
