package service

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func buildVal(v string, bytes int64) func() (any, int64, error) {
	return func() (any, int64, error) { return v, bytes, nil }
}

func TestCacheHitMissEviction(t *testing.T) {
	tests := []struct {
		name       string
		maxEntries int
		maxBytes   int64
		steps      []string // keys inserted in order, 100 bytes each
		wantLive   []string
		wantGone   []string
		wantEvict  int64
	}{
		{
			name:       "entry budget evicts LRU",
			maxEntries: 2,
			steps:      []string{"a", "b", "c"},
			wantLive:   []string{"b", "c"},
			wantGone:   []string{"a"},
			wantEvict:  1,
		},
		{
			name:     "byte budget evicts LRU",
			maxBytes: 250, // 100 bytes per entry: third insert overflows
			steps:    []string{"a", "b", "c"},
			wantLive: []string{"b", "c"},
			wantGone: []string{"a"},
			// c pushes bytes to 300 > 250, evicting a.
			wantEvict: 1,
		},
		{
			name:       "touch refreshes recency",
			maxEntries: 2,
			steps:      []string{"a", "b", "a", "c"}, // re-get of a makes b the LRU
			wantLive:   []string{"a", "c"},
			wantGone:   []string{"b"},
			wantEvict:  1,
		},
		{
			name:     "unbounded keeps everything",
			steps:    []string{"a", "b", "c", "d"},
			wantLive: []string{"a", "b", "c", "d"},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			c := NewCache(tc.maxEntries, tc.maxBytes)
			for _, key := range tc.steps {
				if _, _, err := c.GetOrBuild(key, buildVal("v:"+key, 100)); err != nil {
					t.Fatal(err)
				}
			}
			for _, key := range tc.wantLive {
				if v, ok := c.Get(key); !ok || v != "v:"+key {
					t.Errorf("key %q missing or wrong: %v %v", key, v, ok)
				}
			}
			for _, key := range tc.wantGone {
				if _, ok := c.Get(key); ok {
					t.Errorf("key %q should have been evicted", key)
				}
			}
			if st := c.Stats(); st.Evictions != tc.wantEvict {
				t.Errorf("evictions = %d, want %d", st.Evictions, tc.wantEvict)
			}
		})
	}
}

func TestCacheStatsCounting(t *testing.T) {
	c := NewCache(8, 0)
	if _, hit, _ := c.GetOrBuild("k", buildVal("v", 10)); hit {
		t.Fatal("first build reported as hit")
	}
	if v, hit, _ := c.GetOrBuild("k", func() (any, int64, error) {
		t.Fatal("builder re-ran on hit")
		return nil, 0, nil
	}); !hit || v != "v" {
		t.Fatalf("expected hit with cached value, got %v %v", v, hit)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 10 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheBuildErrorNotCached(t *testing.T) {
	c := NewCache(8, 0)
	boom := errors.New("boom")
	calls := 0
	build := func() (any, int64, error) { calls++; return nil, 0, boom }
	if _, _, err := c.GetOrBuild("k", build); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := c.GetOrBuild("k", build); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if calls != 2 {
		t.Fatalf("failed build cached: %d calls", calls)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("error left an entry: %+v", st)
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := NewCache(8, 0)
	var builds atomic.Int32
	release := make(chan struct{})
	build := func() (any, int64, error) {
		builds.Add(1)
		<-release
		return "shared", 10, nil
	}
	const waiters = 16
	var wg sync.WaitGroup
	vals := make([]any, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.GetOrBuild("k", build)
			if err != nil {
				t.Error(err)
			}
			vals[i] = v
		}(i)
	}
	// Give every goroutine a chance to reach the cache before the single
	// build completes.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("builder ran %d times, want 1", n)
	}
	for i, v := range vals {
		if v != "shared" {
			t.Fatalf("waiter %d got %v", i, v)
		}
	}
	if st := c.Stats(); st.Dedups != waiters-1 {
		t.Fatalf("dedups = %d, want %d (stats %+v)", st.Dedups, waiters-1, st)
	}
}

func TestCacheConcurrentDistinctKeys(t *testing.T) {
	c := NewCache(0, 0)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i%8)
			for j := 0; j < 50; j++ {
				v, _, err := c.GetOrBuild(key, buildVal(key, 8))
				if err != nil || v != key {
					t.Errorf("got %v %v", v, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if st := c.Stats(); st.Entries != 8 {
		t.Fatalf("entries = %d, want 8", st.Entries)
	}
}
