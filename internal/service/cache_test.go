package service

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func buildVal(v string, bytes int64) func() (any, int64, error) {
	return func() (any, int64, error) { return v, bytes, nil }
}

func TestCacheHitMissEviction(t *testing.T) {
	tests := []struct {
		name       string
		maxEntries int
		maxBytes   int64
		steps      []string // keys inserted in order, 100 bytes each
		wantLive   []string
		wantGone   []string
		wantEvict  int64
	}{
		{
			name:       "entry budget evicts LRU",
			maxEntries: 2,
			steps:      []string{"a", "b", "c"},
			wantLive:   []string{"b", "c"},
			wantGone:   []string{"a"},
			wantEvict:  1,
		},
		{
			name:     "byte budget evicts LRU",
			maxBytes: 250, // 100 bytes per entry: third insert overflows
			steps:    []string{"a", "b", "c"},
			wantLive: []string{"b", "c"},
			wantGone: []string{"a"},
			// c pushes bytes to 300 > 250, evicting a.
			wantEvict: 1,
		},
		{
			name:       "touch refreshes recency",
			maxEntries: 2,
			steps:      []string{"a", "b", "a", "c"}, // re-get of a makes b the LRU
			wantLive:   []string{"a", "c"},
			wantGone:   []string{"b"},
			wantEvict:  1,
		},
		{
			name:     "unbounded keeps everything",
			steps:    []string{"a", "b", "c", "d"},
			wantLive: []string{"a", "b", "c", "d"},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			c := NewCache(tc.maxEntries, tc.maxBytes)
			for _, key := range tc.steps {
				if _, _, err := c.GetOrBuild(key, buildVal("v:"+key, 100)); err != nil {
					t.Fatal(err)
				}
			}
			for _, key := range tc.wantLive {
				if v, ok := c.Get(key); !ok || v != "v:"+key {
					t.Errorf("key %q missing or wrong: %v %v", key, v, ok)
				}
			}
			for _, key := range tc.wantGone {
				if _, ok := c.Get(key); ok {
					t.Errorf("key %q should have been evicted", key)
				}
			}
			if st := c.Stats(); st.Evictions != tc.wantEvict {
				t.Errorf("evictions = %d, want %d", st.Evictions, tc.wantEvict)
			}
		})
	}
}

func TestCacheStatsCounting(t *testing.T) {
	c := NewCache(8, 0)
	if _, hit, _ := c.GetOrBuild("k", buildVal("v", 10)); hit {
		t.Fatal("first build reported as hit")
	}
	if v, hit, _ := c.GetOrBuild("k", func() (any, int64, error) {
		t.Fatal("builder re-ran on hit")
		return nil, 0, nil
	}); !hit || v != "v" {
		t.Fatalf("expected hit with cached value, got %v %v", v, hit)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 10 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheBuildErrorNotCached(t *testing.T) {
	c := NewCache(8, 0)
	boom := errors.New("boom")
	calls := 0
	build := func() (any, int64, error) { calls++; return nil, 0, boom }
	if _, _, err := c.GetOrBuild("k", build); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := c.GetOrBuild("k", build); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if calls != 2 {
		t.Fatalf("failed build cached: %d calls", calls)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("error left an entry: %+v", st)
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := NewCache(8, 0)
	var builds atomic.Int32
	release := make(chan struct{})
	build := func() (any, int64, error) {
		builds.Add(1)
		<-release
		return "shared", 10, nil
	}
	const waiters = 16
	var wg sync.WaitGroup
	vals := make([]any, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.GetOrBuild("k", build)
			if err != nil {
				t.Error(err)
			}
			vals[i] = v
		}(i)
	}
	// Give every goroutine a chance to reach the cache before the single
	// build completes.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("builder ran %d times, want 1", n)
	}
	for i, v := range vals {
		if v != "shared" {
			t.Fatalf("waiter %d got %v", i, v)
		}
	}
	if st := c.Stats(); st.Dedups != waiters-1 {
		t.Fatalf("dedups = %d, want %d (stats %+v)", st.Dedups, waiters-1, st)
	}
}

func TestCacheConcurrentDistinctKeys(t *testing.T) {
	c := NewCache(0, 0)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i%8)
			for j := 0; j < 50; j++ {
				v, _, err := c.GetOrBuild(key, buildVal(key, 8))
				if err != nil || v != key {
					t.Errorf("got %v %v", v, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if st := c.Stats(); st.Entries != 8 {
		t.Fatalf("entries = %d, want 8", st.Entries)
	}
}

// modelLRU is a deliberately naive reference implementation: a slice
// ordered most-recent-first, budgets enforced by scanning. The real
// cache must agree with it after every operation.
type modelLRU struct {
	maxEntries int
	maxBytes   int64
	order      []string // front = most recent
	vals       map[string]string
	sizes      map[string]int64
	evictions  int64
}

func newModelLRU(maxEntries int, maxBytes int64) *modelLRU {
	return &modelLRU{maxEntries: maxEntries, maxBytes: maxBytes,
		vals: make(map[string]string), sizes: make(map[string]int64)}
}

func (m *modelLRU) bytes() int64 {
	var n int64
	for _, b := range m.sizes {
		n += b
	}
	return n
}

func (m *modelLRU) touch(key string) {
	for i, k := range m.order {
		if k == key {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	m.order = append([]string{key}, m.order...)
}

func (m *modelLRU) evict() {
	for (m.maxEntries > 0 && len(m.order) > m.maxEntries) ||
		(m.maxBytes > 0 && m.bytes() > m.maxBytes && len(m.order) > 0) {
		last := m.order[len(m.order)-1]
		m.order = m.order[:len(m.order)-1]
		delete(m.vals, last)
		delete(m.sizes, last)
		m.evictions++
	}
}

func (m *modelLRU) put(key, val string, bytes int64) {
	if bytes < 0 {
		bytes = 0
	}
	m.vals[key] = val
	m.sizes[key] = bytes
	m.touch(key)
	m.evict()
}

func (m *modelLRU) get(key string) (string, bool) {
	v, ok := m.vals[key]
	if ok {
		m.touch(key)
	}
	return v, ok
}

// TestCacheRandomOpsAgainstModel drives the cache through long random
// Put/Get/GetOrBuild sequences under several (entry, byte) budgets and
// checks it against the reference model after every single step: same
// hit/miss answers, same values, same live set, same byte total, same
// eviction count, and budgets never exceeded.
func TestCacheRandomOpsAgainstModel(t *testing.T) {
	configs := []struct {
		name       string
		maxEntries int
		maxBytes   int64
	}{
		{"entries-only", 4, 0},
		{"bytes-only", 0, 400},
		{"both-tight", 3, 250},
		{"unbounded", 0, 0},
		{"byte-budget-smaller-than-one-artifact", 0, 50},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			for seed := int64(1); seed <= 5; seed++ {
				rng := rand.New(rand.NewSource(seed))
				c := NewCache(cfg.maxEntries, cfg.maxBytes)
				m := newModelLRU(cfg.maxEntries, cfg.maxBytes)
				for step := 0; step < 600; step++ {
					key := fmt.Sprintf("k%d", rng.Intn(8))
					val := fmt.Sprintf("%s#%d", key, step)
					size := int64(rng.Intn(3)) * 100 // 0, 100 or 200 bytes
					switch rng.Intn(3) {
					case 0: // Put (also exercises overwrite-in-place)
						c.Put(key, val, size)
						m.put(key, val, size)
					case 1: // Get
						got, ok := c.Get(key)
						want, wok := m.get(key)
						if ok != wok || (ok && got != want) {
							t.Fatalf("seed %d step %d: Get(%s) = %v,%v want %v,%v",
								seed, step, key, got, ok, want, wok)
						}
					case 2: // GetOrBuild: builds val on miss, keeps old on hit
						got, hit, err := c.GetOrBuild(key, buildVal(val, size))
						if err != nil {
							t.Fatal(err)
						}
						want, wok := m.get(key)
						if hit != wok {
							t.Fatalf("seed %d step %d: GetOrBuild(%s) hit=%v, model=%v",
								seed, step, key, hit, wok)
						}
						if !wok {
							m.put(key, val, size)
							want = val
						}
						if got != want {
							t.Fatalf("seed %d step %d: GetOrBuild(%s) = %v, want %v",
								seed, step, key, got, want)
						}
					}
					st := c.Stats()
					if cfg.maxEntries > 0 && st.Entries > cfg.maxEntries {
						t.Fatalf("seed %d step %d: %d entries over budget %d",
							seed, step, st.Entries, cfg.maxEntries)
					}
					if cfg.maxBytes > 0 && st.Bytes > cfg.maxBytes {
						t.Fatalf("seed %d step %d: %d bytes over budget %d",
							seed, step, st.Bytes, cfg.maxBytes)
					}
					if st.Entries != len(m.order) || st.Bytes != m.bytes() {
						t.Fatalf("seed %d step %d: cache (%d entries, %d bytes) diverged from model (%d, %d)",
							seed, step, st.Entries, st.Bytes, len(m.order), m.bytes())
					}
					if st.Evictions != m.evictions {
						t.Fatalf("seed %d step %d: evictions %d, model %d",
							seed, step, st.Evictions, m.evictions)
					}
					for _, k := range m.order {
						if _, ok := c.entries[k]; !ok {
							t.Fatalf("seed %d step %d: model key %s missing from cache", seed, step, k)
						}
					}
				}
			}
		})
	}
}

// TestCacheRandomConcurrentInvariants hammers the cache from many
// goroutines doing random Put/Get/GetOrBuild over a small key space
// under a tight byte budget and verifies the invariants that must hold
// regardless of interleaving: at most one builder per key runs at any
// instant (singleflight), every caller observes a value that some
// operation actually stored for that key, and the byte budget holds at
// every snapshot. Run under -race this doubles as the cache's data-race
// harness.
func TestCacheRandomConcurrentInvariants(t *testing.T) {
	const (
		workers  = 12
		opsPer   = 300
		keySpace = 5
		maxBytes = 300
	)
	c := NewCache(0, maxBytes)
	var inflight [keySpace]atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w + 1)))
			for op := 0; op < opsPer; op++ {
				ki := rng.Intn(keySpace)
				key := fmt.Sprintf("k%d", ki)
				switch rng.Intn(3) {
				case 0:
					c.Put(key, key, 100)
				case 1:
					if v, ok := c.Get(key); ok && v != key {
						t.Errorf("Get(%s) returned foreign value %v", key, v)
						return
					}
				case 2:
					v, _, err := c.GetOrBuild(key, func() (any, int64, error) {
						if n := inflight[ki].Add(1); n != 1 {
							t.Errorf("%d concurrent builders for %s", n, key)
						}
						defer inflight[ki].Add(-1)
						return key, 100, nil
					})
					if err != nil || v != key {
						t.Errorf("GetOrBuild(%s) = %v, %v", key, v, err)
						return
					}
				}
				if st := c.Stats(); st.Bytes > maxBytes {
					t.Errorf("byte budget violated: %d > %d", st.Bytes, maxBytes)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Entries > maxBytes/100 {
		t.Fatalf("final entries %d exceed what the byte budget admits", st.Entries)
	}
	if st.Hits+st.Misses == 0 {
		t.Fatal("harness exercised nothing")
	}
}
