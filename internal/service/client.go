package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"fpgadbg/internal/obs"
)

// Client talks to a fpgadbgd daemon over the HTTP/JSON API; cmd/fpgadbg
// -remote is a thin wrapper around it.
type Client struct {
	// Base is the daemon root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP overrides the transport (default http.DefaultClient).
	HTTP *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

// do issues a request and decodes the JSON response into out (when
// non-nil), converting error payloads into errors.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(blob)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.url(path), rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		blob, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if json.Unmarshal(blob, &e) == nil && e.Error != "" {
			return fmt.Errorf("%s %s: %s", method, path, e.Error)
		}
		return fmt.Errorf("%s %s: HTTP %d: %s", method, path, resp.StatusCode, bytes.TrimSpace(blob))
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts a campaign and returns its initial status.
func (c *Client) Submit(ctx context.Context, spec Spec) (Status, error) {
	var st Status
	err := c.do(ctx, http.MethodPost, "/campaigns", spec, &st)
	return st, err
}

// Status fetches one campaign's snapshot.
func (c *Client) Status(ctx context.Context, id string) (Status, error) {
	var st Status
	err := c.do(ctx, http.MethodGet, "/campaigns/"+id, nil, &st)
	return st, err
}

// List fetches every campaign.
func (c *Client) List(ctx context.Context) ([]Status, error) {
	var out []Status
	err := c.do(ctx, http.MethodGet, "/campaigns", nil, &out)
	return out, err
}

// Trace fetches a finished campaign's per-stage telemetry.
func (c *Client) Trace(ctx context.Context, id string) (*obs.StageTrace, error) {
	var st obs.StageTrace
	if err := c.do(ctx, http.MethodGet, "/campaigns/"+id+"/trace", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Cancel stops a campaign.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodPost, "/campaigns/"+id+"/cancel", nil, nil)
}

// Healthz pings the daemon.
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Events streams a campaign's progress, calling fn for each event (past
// events first, then live) until the campaign finishes, the stream drops,
// or ctx expires.
func (c *Client) Events(ctx context.Context, id string, fn func(Event)) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/campaigns/"+id+"/events"), nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		blob, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("events %s: HTTP %d: %s", id, resp.StatusCode, bytes.TrimSpace(blob))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("events %s: bad line %q: %w", id, line, err)
		}
		fn(ev)
	}
	return sc.Err()
}

// Wait polls until the campaign reaches a terminal state and returns its
// result (or the campaign's error).
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*Result, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.State.Terminal() {
			if st.State != StateDone {
				return nil, fmt.Errorf("campaign %s %s: %s", id, st.State, st.Error)
			}
			return st.Result, nil
		}
		select {
		case <-t.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}
