// Package service turns the one-shot debugging loop into a long-running,
// concurrent campaign server: the production face of the paper's argument
// that debug productivity is bounded by how fast the
// detect → localize → correct loop re-spins.
//
// A Service owns a bounded worker pool fed by a priority FIFO queue of
// campaigns, a content-addressed artifact cache (mapped netlists,
// compiled simulator programs, pristine layouts, full-re-P&R baselines,
// golden reference traces and fault dictionaries, keyed by netlist
// fingerprint + build parameters, with singleflight dedup and LRU +
// byte-budget eviction), and per-campaign progress events streamed as
// they happen. Campaigns are cancellable at every stage through contexts
// threaded into internal/debug and the fault scanner's batch callback.
//
// Two campaign kinds share the queue and cache (Spec.Kind):
//
//   - KindDebug runs the full detect → localize → correct loop against an
//     injected design error; with Spec.UseDict it consults a cached fault
//     dictionary (debug.BuildFaultDict) and skips probe insertion for
//     errors the dictionary names from the PO-mismatch signature alone.
//   - KindFaultScan fault-simulates the design's exhaustive single-fault
//     universe — stuck-at-0/1 per net, single LUT-bit flips per cell — on
//     the lane-parallel mutant engine (internal/faults.Scan) and reports
//     detection coverage and latency. It needs no layout and no
//     injection, so a warm scan costs one trace replay per 64·W faults
//     (Spec.SimLanes picks the lane-vector width W).
//
// The same typed API (Submit / Status / Events / Wait / Cancel) is served
// in-process (the load generator in internal/experiments) and over
// HTTP/JSON by cmd/fpgadbgd (see http.go and client.go).
package service
