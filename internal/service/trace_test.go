package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"fpgadbg/internal/obs"
)

// TestStageTraceCompleteness runs repair campaigns until one actually
// repairs, then checks the resulting StageTrace end to end: every
// pipeline stage the campaign executed is present with a nonzero
// duration, rows come out in canonical order, the raw spans are properly
// nested (pairwise disjoint or contained — the pipeline runs on one
// goroutine), and the NDJSON trace log agrees with the stored trace.
func TestStageTraceCompleteness(t *testing.T) {
	var logBuf bytes.Buffer
	svc := New(Config{Workers: 1, TraceLog: &logBuf})
	defer svc.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	var (
		id  string
		res *Result
	)
	for seed := int64(1); seed <= 8; seed++ {
		cid, err := svc.Submit(repairSpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		r, err := svc.Wait(ctx, cid)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if r.Trace == nil {
			t.Fatalf("seed %d: finished campaign carries no stage trace", seed)
		}
		if r.Detected && r.Repaired > 0 {
			id, res = cid, r
			break
		}
	}
	if res == nil {
		t.Skip("no seed produced a candidate-search repair")
	}

	tr := res.Trace
	if tr.Campaign != id || tr.Kind != KindRepair || tr.WallUs <= 0 {
		t.Fatalf("trace header wrong: %+v", tr)
	}

	// Every stage this campaign must have executed, with real time in it.
	required := []string{
		obs.StageQueue, obs.StageSynth, obs.StageMap, obs.StagePlace,
		obs.StageRoute, obs.StageCompile, obs.StageGoldenTrace,
		obs.StageDetect, obs.StageLocalizeDict,
		obs.StageRepairEnumerate, obs.StageRepairValidate, obs.StageEcoVerify,
	}
	for _, stage := range required {
		row := tr.Stage(stage)
		if row == nil {
			t.Errorf("stage %q missing from trace (stages: %+v)", stage, tr.Stages)
			continue
		}
		if row.Count < 1 || row.DurUs <= 0 {
			t.Errorf("stage %q executed but empty: %+v", stage, row)
		}
		if row.ExclUs < 0 || row.ExclUs > row.DurUs {
			t.Errorf("stage %q exclusive time out of range: %+v", stage, row)
		}
	}

	// Rows are in canonical pipeline order.
	rank := make(map[string]int, len(obs.StageOrder))
	for i, s := range obs.StageOrder {
		rank[s] = i
	}
	for i := 1; i < len(tr.Stages); i++ {
		if rank[tr.Stages[i-1].Stage] > rank[tr.Stages[i].Stage] {
			t.Errorf("stages out of canonical order: %q before %q",
				tr.Stages[i-1].Stage, tr.Stages[i].Stage)
		}
	}

	// Counters from every instrumented layer made it to the top.
	for _, ctr := range []string{"candidates", "candidates-validated", "routed-nets"} {
		if tr.Counters[ctr] <= 0 {
			t.Errorf("counter %q absent from trace (counters: %v)", ctr, tr.Counters)
		}
	}

	// Raw spans are properly nested: the pipeline runs on one goroutine,
	// so any two spans must be disjoint or one must contain the other.
	// (obs.AssertProperNesting lives in that package's tests; this is the
	// same pairwise check inline.)
	svc.mu.Lock()
	raw := svc.byID[id].trace.Spans()
	svc.mu.Unlock()
	if len(raw) == 0 {
		t.Fatal("no raw spans recorded")
	}
	for i := range raw {
		for j := i + 1; j < len(raw); j++ {
			a, b := raw[i], raw[j]
			aEnd, bEnd := a.Start.Add(a.Dur), b.Start.Add(b.Dur)
			disjoint := !aEnd.After(b.Start) || !bEnd.After(a.Start)
			aInB := !a.Start.Before(b.Start) && !aEnd.After(bEnd)
			bInA := !b.Start.Before(a.Start) && !bEnd.After(aEnd)
			if !disjoint && !aInB && !bInA {
				t.Errorf("spans overlap without nesting: %s [%v +%v] vs %s [%v +%v]",
					a.Stage, a.Start, a.Dur, b.Stage, b.Start, b.Dur)
			}
		}
	}

	// The service Trace accessor and the HTTP payload source agree.
	got, err := svc.Trace(id)
	if err != nil {
		t.Fatal(err)
	}
	if got.WallUs != tr.WallUs || len(got.Stages) != len(tr.Stages) {
		t.Fatalf("Trace(%s) disagrees with Result.Trace: %+v vs %+v", id, got, tr)
	}

	// The NDJSON export carries the same trace (one line per campaign).
	var logged *obs.StageTrace
	sc := bufio.NewScanner(bytes.NewReader(logBuf.Bytes()))
	for sc.Scan() {
		var st obs.StageTrace
		if err := json.Unmarshal(sc.Bytes(), &st); err != nil {
			t.Fatalf("bad NDJSON trace line %q: %v", sc.Text(), err)
		}
		if st.Campaign == id {
			logged = &st
		}
	}
	if logged == nil {
		t.Fatalf("campaign %s missing from NDJSON trace log", id)
	}
	if logged.WallUs != tr.WallUs || len(logged.Stages) != len(tr.Stages) {
		t.Fatalf("NDJSON trace disagrees with stored trace: %+v vs %+v", logged, tr)
	}

	// An overlay campaign exercises the two zero-CAD stages: the causal
	// walk ranks suspects once per localization and every probe round is
	// a tap switch, so both must surface in the canonical trace.
	var ovRes *Result
	for seed := int64(1); seed <= 8; seed++ {
		spec := fastSpec("9sym", seed)
		spec.Overlay = true
		cid, err := svc.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		r, err := svc.Wait(ctx, cid)
		if err != nil {
			t.Fatalf("overlay seed %d: %v", seed, err)
		}
		if r.Detected {
			ovRes = r
			break
		}
	}
	if ovRes == nil {
		t.Fatal("no overlay seed excited its injected error")
	}
	if !ovRes.Overlay || ovRes.OverlaySwitches == 0 {
		t.Fatalf("overlay campaign did not switch taps: %+v", ovRes)
	}
	for _, stage := range []string{obs.StageLocalizeCausal, obs.StageProbeSwitch} {
		row := ovRes.Trace.Stage(stage)
		if row == nil {
			t.Fatalf("overlay stage %q missing from trace (stages: %+v)", stage, ovRes.Trace.Stages)
		}
		if row.Count < 1 || row.DurUs <= 0 {
			t.Fatalf("overlay stage %q executed but empty: %+v", stage, row)
		}
	}
	if n := ovRes.Trace.Stage(obs.StageProbeSwitch).Count; int(n) != ovRes.OverlaySwitches {
		t.Errorf("probe-switch span count %d != %d overlay switches",
			n, ovRes.OverlaySwitches)
	}
}

// TestNoTelemetryDisablesTraces pins the control arm used by the
// instrumentation-overhead benchmark: NoTelemetry produces campaigns
// with no registry, no trace and no trace endpoint, on the same code
// path.
func TestNoTelemetryDisablesTraces(t *testing.T) {
	svc := New(Config{Workers: 1, NoTelemetry: true})
	defer svc.Close()
	if svc.Registry() != nil {
		t.Fatal("NoTelemetry service still has a registry")
	}
	id, err := svc.Submit(fastSpec("9sym", 1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := svc.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Fatalf("NoTelemetry campaign recorded a trace: %+v", res.Trace)
	}
	if _, err := svc.Trace(id); err == nil {
		t.Fatal("Trace() of an untraced campaign should error")
	}
}

// TestStatsTelemetryFields pins the new Stats satellites: queue depth,
// per-kind counters and running age.
func TestStatsTelemetryFields(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	ctx := context.Background()

	ids := []string{}
	for i := 0; i < 3; i++ {
		id, err := svc.Submit(fastSpec("9sym", 1))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	fid, err := svc.Submit(Spec{Design: "9sym", Kind: KindFaultScan, Patterns: 16, Cycles: 2})
	if err != nil {
		t.Fatal(err)
	}
	ids = append(ids, fid)

	st := svc.Stats()
	if st.QueueDepth != st.Queued {
		t.Fatalf("QueueDepth %d != Queued %d", st.QueueDepth, st.Queued)
	}
	if st.ByKind[KindDebug] != 3 || st.ByKind[KindFaultScan] != 1 {
		t.Fatalf("ByKind = %v", st.ByKind)
	}

	for _, id := range ids {
		if _, err := svc.Wait(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	st = svc.Stats()
	if st.QueueDepth != 0 || st.Running != 0 {
		t.Fatalf("drained service still reports work: %+v", st)
	}
	if st.RunningAge != 0 {
		t.Fatalf("no in-flight campaign but RunningAge = %v", st.RunningAge)
	}
	if st.Done != int64(len(ids)) {
		t.Fatalf("stats = %+v", st)
	}

	// The registry mirrors the gauge accounting.
	snap := svc.Registry().Snapshot()
	if snap.Gauges["queue_depth"] != 0 || snap.Gauges["workers_busy"] != 0 {
		t.Fatalf("gauges not drained: %v", snap.Gauges)
	}
	if snap.Counters["campaigns."+KindDebug] != 3 || snap.Counters["campaigns."+KindFaultScan] != 1 {
		t.Fatalf("campaign counters = %v", snap.Counters)
	}
}
