package service

import (
	"context"
	"testing"
	"time"
)

func modelSpec(design, model string) Spec {
	return Spec{Design: design, Kind: KindFaultScan, FaultModel: model, Patterns: 32, Cycles: 2}
}

func waitResult(t *testing.T, svc *Service, sp Spec) *Result {
	t.Helper()
	id, err := svc.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	res, err := svc.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestPairScanCampaign runs the pair fault model end to end: sampled
// pair universe, lane scan, dictionary diagnosis, digest determinism,
// and dictionary-artifact reuse on the warm run.
func TestPairScanCampaign(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	res := waitResult(t, svc, modelSpec("9sym", FaultModelPair))
	if res.FaultModel != FaultModelPair {
		t.Fatalf("result lost the fault model: %+v", res)
	}
	if res.PairsTotal == 0 || res.PairsDetected == 0 {
		t.Fatalf("pair scan found nothing: %+v", res)
	}
	if res.FaultsTotal != 2*res.PairsTotal {
		t.Fatalf("a pair carries two faults: total %d vs pairs %d", res.FaultsTotal, res.PairsTotal)
	}
	if res.PairsDiagnosed > res.PairsDetected || res.PairDiagRate < 0 || res.PairDiagRate > 1 {
		t.Fatalf("implausible diagnosis accounting: %+v", res)
	}

	res2 := waitResult(t, svc, modelSpec("9sym", FaultModelPair))
	if res2.Digest != res.Digest {
		t.Fatalf("pair campaign not deterministic: %s vs %s", res.Digest, res2.Digest)
	}
	if res2.CacheHits == 0 {
		t.Fatalf("warm pair campaign missed the artifact cache: %+v", res2)
	}

	// The model must be part of the result identity: the same spec under
	// the single model digests differently.
	single := waitResult(t, svc, modelSpec("9sym", FaultModelSingle))
	if single.Digest == res.Digest {
		t.Fatal("pair and single campaigns share a digest")
	}
}

// TestSEUScanCampaign runs the transient model: windowed universe,
// latency percentiles measured from the arming edge, masked fraction
// against the permanent arms, digest determinism.
func TestSEUScanCampaign(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	res := waitResult(t, svc, modelSpec("9sym", FaultModelSEU))
	if res.FaultModel != FaultModelSEU {
		t.Fatalf("result lost the fault model: %+v", res)
	}
	if res.FaultsTotal == 0 || res.FaultsDetected == 0 {
		t.Fatalf("SEU scan found nothing: %+v", res)
	}
	if res.SEULatencyP50 < 1 || res.SEULatencyP99 < res.SEULatencyP50 {
		t.Fatalf("implausible latency percentiles: %+v", res)
	}
	if res.MaskedFraction < 0 || res.MaskedFraction > 1 {
		t.Fatalf("implausible masked fraction: %+v", res)
	}
	res2 := waitResult(t, svc, modelSpec("9sym", FaultModelSEU))
	if res2.Digest != res.Digest {
		t.Fatalf("SEU campaign not deterministic: %s vs %s", res.Digest, res2.Digest)
	}
}

// TestInterconnectScanCampaign runs the interconnect model: route
// stuck-ats plus bridges, with kind accounting and digest determinism.
func TestInterconnectScanCampaign(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	res := waitResult(t, svc, modelSpec("9sym", FaultModelInterconnect))
	if res.FaultModel != FaultModelInterconnect {
		t.Fatalf("result lost the fault model: %+v", res)
	}
	if res.RouteFaults == 0 || res.BridgeFaults == 0 {
		t.Fatalf("interconnect universe incomplete: %+v", res)
	}
	if res.FaultsTotal != res.RouteFaults+res.BridgeFaults {
		t.Fatalf("kind accounting wrong: %+v", res)
	}
	if res.FaultsDetected == 0 || res.FaultCoverage <= 0 {
		t.Fatalf("interconnect scan blind: %+v", res)
	}
	res2 := waitResult(t, svc, modelSpec("9sym", FaultModelInterconnect))
	if res2.Digest != res.Digest {
		t.Fatalf("interconnect campaign not deterministic: %s vs %s", res.Digest, res2.Digest)
	}
}

// TestFaultModelValidation pins the spec surface: unknown models are
// rejected, and a non-single model demands the faultscan kind.
func TestFaultModelValidation(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	if _, err := svc.Submit(Spec{Design: "9sym", Kind: KindFaultScan, FaultModel: "quantum"}); err == nil {
		t.Fatal("unknown fault model accepted")
	}
	if _, err := svc.Submit(Spec{Design: "9sym", Kind: KindDebug, FaultModel: FaultModelPair}); err == nil {
		t.Fatal("pair model accepted on a non-faultscan kind")
	}
	if _, err := svc.Submit(Spec{Design: "9sym", Kind: KindDebug, FaultModel: FaultModelSingle}); err != nil {
		t.Fatalf("explicit single model should be legal everywhere: %v", err)
	}
}
