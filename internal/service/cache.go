package service

import (
	"container/list"
	"fmt"
	"sync"
)

// Cache is the content-addressed artifact store behind the campaign
// service: mapped netlists, compiled simulator programs, pristine layouts
// and golden reference traces, keyed by netlist fingerprint plus build
// parameters. It combines
//
//   - singleflight deduplication: concurrent GetOrBuild calls for the same
//     key run the builder once and share the result, so N campaigns
//     submitted together on one design pay synth/place/compile once;
//   - LRU eviction under two budgets, entry count and total bytes
//     (artifact sizes are caller-supplied estimates).
//
// Values are shared between callers and must be treated as immutable;
// campaigns clone mutable artifacts (netlists, layouts) after the get.
type Cache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	entries    map[string]*list.Element // of *cacheEntry
	lru        *list.List               // front = most recent
	inflight   map[string]*flight

	hits      int64
	misses    int64
	evictions int64
	dedups    int64 // calls that latched onto an in-flight build
}

type cacheEntry struct {
	key   string
	val   any
	bytes int64
}

// flight is one in-progress build; waiters block on done.
type flight struct {
	done  chan struct{}
	val   any
	bytes int64
	err   error
}

// NewCache builds a cache bounded by maxEntries artifacts and maxBytes
// estimated total size. Zero or negative budgets mean unbounded in that
// dimension.
func NewCache(maxEntries int, maxBytes int64) *Cache {
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		entries:    make(map[string]*list.Element),
		lru:        list.New(),
		inflight:   make(map[string]*flight),
	}
}

// GetOrBuild returns the artifact under key, building it at most once per
// residency. build returns the artifact and its estimated size in bytes.
// hit reports whether the value came from the cache (including latching
// onto another caller's in-flight build). Build errors are returned to
// every waiter and nothing is cached.
func (c *Cache) GetOrBuild(key string, build func() (any, int64, error)) (val any, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		e := el.Value.(*cacheEntry)
		c.mu.Unlock()
		return e.val, true, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.dedups++
		c.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, false, f.err
		}
		return f.val, true, nil
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.misses++
	c.mu.Unlock()

	func() {
		defer func() {
			if r := recover(); r != nil {
				f.err = fmt.Errorf("service: artifact build for %q panicked: %v", key, r)
			}
		}()
		f.val, f.bytes, f.err = build()
	}()

	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil {
		c.insertLocked(key, f.val, f.bytes)
	}
	c.mu.Unlock()
	close(f.done)
	if f.err != nil {
		return nil, false, f.err
	}
	return f.val, false, nil
}

// Get returns a cached artifact without building.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	return el.Value.(*cacheEntry).val, true
}

// Put inserts an artifact directly (used for traces recorded as a side
// effect of a replay rather than built on demand).
func (c *Cache) Put(key string, val any, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		c.bytes += bytes - e.bytes
		e.val, e.bytes = val, bytes
		c.lru.MoveToFront(el)
		c.evictLocked()
		return
	}
	c.insertLocked(key, val, bytes)
}

func (c *Cache) insertLocked(key string, val any, bytes int64) {
	if bytes < 0 {
		bytes = 0
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, val: val, bytes: bytes})
	c.bytes += bytes
	c.evictLocked()
}

// evictLocked drops least-recently-used entries until both budgets hold.
// A single artifact larger than the byte budget is evicted immediately —
// it would otherwise pin the whole cache.
func (c *Cache) evictLocked() {
	for (c.maxEntries > 0 && c.lru.Len() > c.maxEntries) ||
		(c.maxBytes > 0 && c.bytes > c.maxBytes && c.lru.Len() > 0) {
		el := c.lru.Back()
		if el == nil {
			return
		}
		e := el.Value.(*cacheEntry)
		c.lru.Remove(el)
		delete(c.entries, e.key)
		c.bytes -= e.bytes
		c.evictions++
	}
}

// CacheStats is a point-in-time snapshot of cache behavior.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	// Dedups counts GetOrBuild calls that latched onto a concurrent
	// in-flight build of the same key (singleflight saves).
	Dedups int64 `json:"dedups"`
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   c.lru.Len(),
		Bytes:     c.bytes,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Dedups:    c.dedups,
	}
}
