package service

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"

	"fpgadbg/internal/obs"
)

// The HTTP/JSON face of the service, mounted by cmd/fpgadbgd:
//
//	POST /campaigns               submit a Spec, returns the Status
//	GET  /campaigns               list all campaigns
//	GET  /campaigns/{id}          one campaign's status (+result when done)
//	GET  /campaigns/{id}/events   NDJSON progress stream, past + live
//	GET  /campaigns/{id}/trace    finished campaign's StageTrace (JSON)
//	POST /campaigns/{id}/cancel   cancel queued or running campaign
//	GET  /healthz                 liveness + queue depth
//	GET  /metrics                 expvar globals + this service's stats
//	                              and telemetry registry under "fpgadbgd"

// API is the campaign surface the HTTP layer serves. *Service implements
// it directly; coord.Coordinator implements it by routing campaigns
// across service replicas, so both mount the identical REST interface
// through NewHandler.
type API interface {
	Submit(Spec) (string, error)
	Status(id string) (Status, error)
	List() []Status
	Events(id string) ([]Event, <-chan Event, func(), error)
	Trace(id string) (*obs.StageTrace, error)
	Cancel(id string) error
	Stats() Stats
	// MetricsDoc is the JSON-marshalable value served under the
	// "fpgadbgd" key of /metrics.
	MetricsDoc() any
}

// MetricsDoc implements API: this instance's stats plus its telemetry
// registry snapshot — the document dashboards and the CI daemon smoke
// assert against.
func (s *Service) MetricsDoc() any {
	return struct {
		Stats
		Telemetry obs.RegistrySnapshot `json:"telemetry"`
	}{s.Stats(), s.reg.Snapshot()}
}

// metricsHandler serves the expvar-style JSON document: every process
// global expvar.Do yields (memstats, cmdline, ...) plus this instance's
// MetricsDoc under the "fpgadbgd" key. The per-instance key is assembled
// here rather than via expvar.Publish — Publish is process-global and
// panics on duplicates, so two services in one process (tests, embedded
// daemons) would both report whichever instance registered first.
func metricsHandler(api API) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintf(w, "{\n")
		first := true
		expvar.Do(func(kv expvar.KeyValue) {
			if kv.Key == "fpgadbgd" {
				return // stale global from older embedders; superseded below
			}
			if !first {
				fmt.Fprintf(w, ",\n")
			}
			first = false
			fmt.Fprintf(w, "%q: %s", kv.Key, kv.Value)
		})
		b, err := json.Marshal(api.MetricsDoc())
		if err != nil {
			b = []byte("null")
		}
		if !first {
			fmt.Fprintf(w, ",\n")
		}
		fmt.Fprintf(w, "%q: %s\n}\n", "fpgadbgd", b)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone is the only failure
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// Handler mounts the HTTP API.
func (s *Service) Handler() http.Handler { return NewHandler(s) }

// NewHandler mounts the REST surface over any API implementation — the
// single service in the classic daemon, the sharded coordinator when
// fpgadbgd runs with -replicas.
func NewHandler(s API) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /campaigns", func(w http.ResponseWriter, r *http.Request) {
		var spec Spec
		// A campaign spec is a handful of scalars; anything bigger is abuse.
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<10)).Decode(&spec); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad spec: %w", err))
			return
		}
		id, err := s.Submit(spec)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		st, err := s.Status(id)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusCreated, st)
	})

	mux.HandleFunc("GET /campaigns", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.List())
	})

	mux.HandleFunc("GET /campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Status(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("GET /campaigns/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		past, live, unsub, err := s.Events(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		defer unsub()
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		for _, ev := range past {
			enc.Encode(ev) //nolint:errcheck
		}
		if flusher != nil {
			flusher.Flush()
		}
		for {
			select {
			case ev, ok := <-live:
				if !ok {
					return // campaign finished
				}
				if err := enc.Encode(ev); err != nil {
					return // client gone
				}
				if flusher != nil {
					flusher.Flush()
				}
			case <-r.Context().Done():
				return
			}
		}
	})

	mux.HandleFunc("GET /campaigns/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Trace(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("POST /campaigns/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		if err := s.Cancel(r.PathValue("id")); err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		st, _ := s.Status(r.PathValue("id"))
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		st := s.Stats()
		writeJSON(w, http.StatusOK, map[string]any{
			"ok":      true,
			"workers": st.Workers,
			"queued":  st.Queued,
			"running": st.Running,
		})
	})

	mux.HandleFunc("GET /metrics", metricsHandler(s))

	return mux
}
