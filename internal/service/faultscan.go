package service

// The faultscan campaign pipeline: fault-simulate a design's exhaustive
// single-fault universe on the lane-parallel mutant engine (64·W mutants
// per replay at Spec.SimLanes lanes) and report detection
// coverage and latency. Unlike debug campaigns it touches no layout — the
// only shared artifact is the cached golden netlist + compiled simulator
// program, which it forks per campaign.

import (
	"context"
	"time"

	"fpgadbg/internal/faults"
)

// faultScanEventEvery throttles per-batch progress events.
const faultScanEventEvery = 32

// runFaultScan executes one faultscan campaign against the cached golden
// artifact. Cancellation is honored between lane batches.
func (s *Service) runFaultScan(ctx context.Context, c *campaign, ga *goldenArtifact) (*Result, error) {
	spec := c.spec
	u := faults.Universe(ga.golden)
	lanes := ga.mach.Lanes()
	batches := (len(u) + lanes - 1) / lanes
	c.appendEvent("faultscan", 0, "universe: %d faults in %d batches of %d (%d patterns x %d cycles)",
		len(u), batches, lanes, spec.Patterns, spec.Cycles)
	cfg := faults.ScanConfig{
		Patterns: spec.Patterns,
		Cycles:   spec.Cycles,
		Seed:     spec.Seed,
		Obs:      c.trace,
		OnBatch: func(done, total int) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			if done%faultScanEventEvery == 0 && done < total {
				c.appendEvent("faultscan", done, "batch %d/%d scanned", done, total)
			}
			return nil
		},
	}
	scanStart := time.Now()
	results, err := faults.Scan(ga.mach, u, cfg)
	if err != nil {
		return nil, err
	}
	wall := time.Since(scanStart)
	res := &Result{
		Design:       spec.Design,
		FaultsTotal:  len(u),
		FaultBatches: batches,
	}
	latSum := 0
	for _, r := range results {
		if !r.Detected {
			continue
		}
		res.FaultsDetected++
		latSum += r.FirstCycle + 1
	}
	res.Detected = res.FaultsDetected > 0
	if len(u) > 0 {
		res.FaultCoverage = float64(res.FaultsDetected) / float64(len(u))
	}
	if res.FaultsDetected > 0 {
		res.MeanLatencyCycles = float64(latSum) / float64(res.FaultsDetected)
	}
	if sec := wall.Seconds(); sec > 0 {
		res.FaultsPerSec = float64(len(u)) / sec
	}
	c.appendEvent("faultscan", batches, "done: %d/%d detected (%.1f%%), mean latency %.1f cycles, %.0f faults/sec",
		res.FaultsDetected, len(u), 100*res.FaultCoverage, res.MeanLatencyCycles, res.FaultsPerSec)
	return res, nil
}
