package service

// The faultscan campaign pipeline: fault-simulate a design's fault
// universe on the lane-parallel mutant engine (64·W mutants per replay
// at Spec.SimLanes lanes) and report detection coverage and latency.
// Spec.FaultModel picks the universe and the analysis: the exhaustive
// single-fault universe (default), sampled fault pairs diagnosed through
// the cached syndrome-composition dictionary, transient windowed SEUs
// with detection-latency percentiles and masking, or interconnect
// (bridging + route stuck-at) faults. Unlike debug campaigns it touches
// no layout — the only shared artifacts are the cached golden netlist +
// compiled simulator program (forked per campaign) and, for pair
// campaigns, the per-design syndrome dictionary.

import (
	"context"
	"fmt"
	"sort"
	"time"

	"fpgadbg/internal/debug"
	"fpgadbg/internal/faults"
)

// faultScanEventEvery throttles per-batch progress events.
const faultScanEventEvery = 32

// seuMaxFaults bounds the windowed-SEU sample per campaign: each sampled
// fault is scanned twice (transient + permanent arm), so the sample is
// half the effective batch budget of a single-model scan.
const seuMaxFaults = 512

// scanConfig builds the campaign's fault-scan configuration with
// cancellation and throttled progress events threaded through.
func (s *Service) scanConfig(ctx context.Context, c *campaign, stage string) faults.ScanConfig {
	spec := c.spec
	return faults.ScanConfig{
		Patterns: spec.Patterns,
		Cycles:   spec.Cycles,
		Seed:     spec.Seed,
		Obs:      c.trace,
		OnBatch: func(done, total int) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			if done%faultScanEventEvery == 0 && done < total {
				c.appendEvent(stage, done, "batch %d/%d scanned", done, total)
			}
			return nil
		},
	}
}

// scanTally folds shared per-fault outcome statistics into res.
func scanTally(res *Result, results []faults.ScanResult, wall time.Duration) {
	latSum := 0
	for _, r := range results {
		if !r.Detected {
			continue
		}
		res.FaultsDetected++
		latSum += r.FirstCycle + 1
	}
	res.Detected = res.FaultsDetected > 0
	if len(results) > 0 {
		res.FaultCoverage = float64(res.FaultsDetected) / float64(len(results))
	}
	if res.FaultsDetected > 0 {
		res.MeanLatencyCycles = float64(latSum) / float64(res.FaultsDetected)
	}
	if sec := wall.Seconds(); sec > 0 {
		res.FaultsPerSec = float64(len(results)) / sec
	}
}

// runFaultScan executes one faultscan campaign against the cached golden
// artifact, dispatching on the spec's fault model. Cancellation is
// honored between lane batches. count is the campaign's cache-outcome
// tally (pair campaigns consult the syndrome-dictionary cache).
func (s *Service) runFaultScan(ctx context.Context, c *campaign, ga *goldenArtifact, count func(bool) string) (*Result, error) {
	switch c.spec.FaultModel {
	case FaultModelPair:
		return s.runPairScan(ctx, c, ga, count)
	case FaultModelSEU:
		return s.runSEUScan(ctx, c, ga)
	case FaultModelInterconnect:
		return s.runInterconnectScan(ctx, c, ga)
	default:
		return s.runSingleScan(ctx, c, ga)
	}
}

// runSingleScan is the classic exhaustive single-fault universe scan.
func (s *Service) runSingleScan(ctx context.Context, c *campaign, ga *goldenArtifact) (*Result, error) {
	spec := c.spec
	u := faults.Universe(ga.golden)
	lanes := ga.mach.Lanes()
	batches := (len(u) + lanes - 1) / lanes
	c.appendEvent("faultscan", 0, "universe: %d faults in %d batches of %d (%d patterns x %d cycles)",
		len(u), batches, lanes, spec.Patterns, spec.Cycles)
	cfg := s.scanConfig(ctx, c, "faultscan")
	scanStart := time.Now()
	results, err := faults.Scan(ga.mach, u, cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Design:       spec.Design,
		FaultModel:   FaultModelSingle,
		FaultsTotal:  len(u),
		FaultBatches: batches,
	}
	scanTally(res, results, time.Since(scanStart))
	c.appendEvent("faultscan", batches, "done: %d/%d detected (%.1f%%), mean latency %.1f cycles, %.0f faults/sec",
		res.FaultsDetected, len(u), 100*res.FaultCoverage, res.MeanLatencyCycles, res.FaultsPerSec)
	return res, nil
}

// syndromeDict returns the design's syndrome-composition dictionary,
// built once per (fingerprint, scan stimulus) and cached.
func (s *Service) syndromeDict(c *campaign, ga *goldenArtifact, count func(bool) string) (*debug.SyndromeDict, error) {
	spec := c.spec
	key := fmt.Sprintf("syndict/%s/p%d-c%d-s%d", ga.fp, spec.Patterns, spec.Cycles, spec.Seed)
	v, hit, err := s.cache.GetOrBuild(key, func() (any, int64, error) {
		d, err := debug.BuildSyndromeDict(ga.mach, nil, faults.ScanConfig{
			Patterns: spec.Patterns, Cycles: spec.Cycles, Seed: spec.Seed, Obs: c.trace,
		})
		if err != nil {
			return nil, 0, err
		}
		return d, d.MemoryFootprint(), nil
	})
	if err != nil {
		return nil, fmt.Errorf("syndrome dict %s: %w", spec.Design, err)
	}
	d := v.(*debug.SyndromeDict)
	c.appendEvent("dict", 0, "syndrome dictionary: %d/%d singles detectable, %d signatures (%s)",
		d.Detected, d.Faults, d.Signatures(), count(hit))
	return d, nil
}

// runPairScan scans a sampled, suspect-ranked pair universe lane-packed
// (one pair per lane) and diagnoses every detected composed syndrome
// through the syndrome-composition dictionary: a diagnosis counts as
// probe-free when a decoded candidate pair reproduces the exact observed
// signature in the verification scan.
func (s *Service) runPairScan(ctx context.Context, c *campaign, ga *goldenArtifact, count func(bool) string) (*Result, error) {
	spec := c.spec
	dict, err := s.syndromeDict(c, ga, count)
	if err != nil {
		return nil, err
	}
	pu := faults.PairUniverse(ga.golden, faults.Universe(ga.golden), faults.PairConfig{
		Seed: spec.Seed, Singles: dict.Singles(),
	})
	lanes := ga.mach.Lanes()
	batches := (len(pu) + lanes - 1) / lanes
	c.appendEvent("pairscan", 0, "pair universe: %d sampled pairs in %d batches of %d lanes (one pair per lane)",
		len(pu), batches, lanes)
	cfg := s.scanConfig(ctx, c, "pairscan")
	scanStart := time.Now()
	prs, err := faults.PairScan(ga.mach, pu, cfg)
	if err != nil {
		return nil, err
	}
	wall := time.Since(scanStart)
	res := &Result{
		Design:       spec.Design,
		FaultModel:   FaultModelPair,
		FaultsTotal:  2 * len(pu),
		FaultBatches: batches,
		PairsTotal:   len(pu),
	}
	masked := 0
	for _, r := range prs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !r.Detected {
			continue
		}
		res.PairsDetected++
		m, err := dict.Diagnose(ga.mach, r.Syndrome)
		if err != nil {
			return nil, err
		}
		switch {
		case m.Class == debug.ClassPair && m.Confirmed:
			res.PairsDiagnosed++
		case m.Class == debug.ClassSingle && m.MaybeMasked:
			masked++
		}
	}
	res.Detected = res.PairsDetected > 0
	if len(pu) > 0 {
		res.FaultCoverage = float64(res.PairsDetected) / float64(len(pu))
		res.MaskedFraction = float64(masked) / float64(len(pu))
	}
	if res.PairsDetected > 0 {
		// The probe-free resolution rate: confirmed pair diagnoses plus
		// masked-pair verdicts (exact single-signature matches, a sound
		// resolution naming the dominant fault) over detected pairs.
		res.PairDiagRate = float64(res.PairsDiagnosed+masked) / float64(res.PairsDetected)
	}
	if sec := wall.Seconds(); sec > 0 {
		res.FaultsPerSec = float64(2*len(pu)) / sec
	}
	c.appendEvent("pairscan", batches,
		"done: %d/%d pairs detected, %d diagnosed probe-free (%.1f%%), %d masked to a single",
		res.PairsDetected, len(pu), res.PairsDiagnosed, 100*res.PairDiagRate, masked)
	return res, nil
}

// runSEUScan arms a stride sample of the single-fault universe only for
// transient cycle windows and scans transient and permanent arms of each
// site, reporting detection-latency percentiles from the arming edge and
// the fraction of upsets the window masked.
func (s *Service) runSEUScan(ctx context.Context, c *campaign, ga *goldenArtifact) (*Result, error) {
	spec := c.spec
	u := faults.Universe(ga.golden)
	cycles := spec.Patterns * spec.Cycles
	winLen := 2 * spec.Cycles
	wu := faults.WindowUniverse(u, cycles, winLen, seuMaxFaults, spec.Seed)
	perm := make([]faults.Fault, len(wu))
	for i, f := range wu {
		f.From, f.To = 0, 0
		perm[i] = f
	}
	lanes := ga.mach.Lanes()
	batches := 2 * ((len(wu) + lanes - 1) / lanes)
	c.appendEvent("seuscan", 0, "windowed universe: %d faults, %d-cycle windows in a %d-cycle stimulus (plus permanent arms)",
		len(wu), winLen, cycles)
	cfg := s.scanConfig(ctx, c, "seuscan")
	scanStart := time.Now()
	wres, err := faults.Scan(ga.mach, wu, cfg)
	if err != nil {
		return nil, err
	}
	pres, err := faults.Scan(ga.mach, perm, cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Design:       spec.Design,
		FaultModel:   FaultModelSEU,
		FaultsTotal:  len(wu),
		FaultBatches: batches,
	}
	scanTally(res, wres, time.Since(scanStart))
	var lat []float64
	masked, permDetected := 0, 0
	for i, r := range wres {
		if pres[i].Detected {
			permDetected++
			if !r.Detected {
				masked++
			}
		}
		if r.Detected {
			lat = append(lat, float64(r.FirstCycle-int(wu[i].From)+1))
		}
	}
	res.SEULatencyP50, res.SEULatencyP99 = percentiles(lat)
	if permDetected > 0 {
		res.MaskedFraction = float64(masked) / float64(permDetected)
	}
	c.appendEvent("seuscan", batches,
		"done: %d/%d windowed upsets detected, latency p50 %.0f / p99 %.0f cycles, %.1f%% masked by the window",
		res.FaultsDetected, len(wu), res.SEULatencyP50, res.SEULatencyP99, 100*res.MaskedFraction)
	return res, nil
}

// percentiles returns the p50 and p99 of xs (0, 0 when empty).
func percentiles(xs []float64) (p50, p99 float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	sort.Float64s(xs)
	at := func(q float64) float64 {
		i := int(q * float64(len(xs)-1))
		return xs[i]
	}
	return at(0.50), at(0.99)
}

// runInterconnectScan scans the interconnect fault universe: route
// stuck-ats on every LUT pin plus a seeded bridge sample.
func (s *Service) runInterconnectScan(ctx context.Context, c *campaign, ga *goldenArtifact) (*Result, error) {
	spec := c.spec
	iu, err := faults.InterconnectUniverse(ga.golden, faults.InterconnectConfig{Seed: spec.Seed})
	if err != nil {
		return nil, err
	}
	routes, bridges := 0, 0
	for _, f := range iu {
		if f.Kind == faults.BridgeAND || f.Kind == faults.BridgeOR {
			bridges++
		} else {
			routes++
		}
	}
	lanes := ga.mach.Lanes()
	batches := (len(iu) + lanes - 1) / lanes
	c.appendEvent("interconnect", 0, "interconnect universe: %d route stuck-ats + %d bridges in %d batches",
		routes, bridges, batches)
	cfg := s.scanConfig(ctx, c, "interconnect")
	scanStart := time.Now()
	results, err := faults.Scan(ga.mach, iu, cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Design:       spec.Design,
		FaultModel:   FaultModelInterconnect,
		FaultsTotal:  len(iu),
		FaultBatches: batches,
		RouteFaults:  routes,
		BridgeFaults: bridges,
	}
	scanTally(res, results, time.Since(scanStart))
	c.appendEvent("interconnect", batches, "done: %d/%d detected (%.1f%%), mean latency %.1f cycles",
		res.FaultsDetected, len(iu), 100*res.FaultCoverage, res.MeanLatencyCycles)
	return res, nil
}
