// Package fpgadbg reproduces "Efficient Error Detection, Localization,
// and Correction for FPGA-Based Debugging" (Lach, Mangione-Smith,
// Potkonjak; DAC 2000): physical-design tiling that confines each
// emulation-debugging change — test-logic insertion or error correction —
// to the affected tiles, so back-end CAD effort scales with the change
// instead of the design.
//
// The implementation spans the full stack the paper depends on: Boolean
// function representations (internal/logic), a LUT/DFF netlist IR
// (internal/netlist), a from-scratch BLIF reader/writer (internal/blif), a
// bit-parallel functional simulator standing in for emulation hardware
// (internal/sim), technology mapping (internal/synth), XC4000-style CLB
// packing (internal/pack), a device model (internal/device), a simulated-
// annealing placer (internal/place), a negotiated-congestion router
// (internal/route), static timing analysis (internal/timing), the tiling
// engine itself (internal/core), the debugging loop (internal/debug) with
// test-logic builders (internal/instr), design-error injection
// (internal/faults) and pattern generation (internal/testgen),
// engineering-change tracing (internal/eco), partial bitstream generation
// (internal/bitstream), FM partitioning (internal/partition), the nine
// benchmark generators (internal/bench), the evaluation harness
// (internal/experiments), and the concurrent debug-campaign service
// (internal/service) served over HTTP by cmd/fpgadbgd.
//
// See DESIGN.md for the system inventory (the compiled emulation
// substrate is §3) and EXPERIMENTS.md for paper-versus-measured results.
// The top-level benchmarks in bench_test.go regenerate every table and
// figure; cmd/benchrepro -json records the simulator's performance
// trajectory in BENCH_sim.json.
package fpgadbg
