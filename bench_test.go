package fpgadbg_test

// Top-level benchmarks: one per table and figure of the paper's evaluation
// section, plus micro-benchmarks of the substrate and ablation benches for
// the design choices called out in DESIGN.md. Each macro benchmark prints
// its reproduced rows once (the same output cmd/benchrepro gives).
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The macro benches default to a reduced benchmark set so the whole suite
// finishes in minutes; set -benchfull to run all nine designs exactly as
// EXPERIMENTS.md records them.

import (
	"flag"
	"fmt"
	"sync"
	"testing"

	"fpgadbg/internal/bench"
	"fpgadbg/internal/core"
	"fpgadbg/internal/debug"
	"fpgadbg/internal/experiments"
	"fpgadbg/internal/faults"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/overlay"
	"fpgadbg/internal/sim"
	"fpgadbg/internal/synth"
	"fpgadbg/internal/testgen"
)

var benchFull = flag.Bool("benchfull", false, "run macro benchmarks on all nine designs")

// cfg picks the benchmark scope.
func cfg() experiments.Config {
	c := experiments.Config{PlaceEffort: 0.4, Seed: 1}
	if !*benchFull {
		c.Designs = []string{"9sym", "c499", "c880", "s9234"}
	}
	return c
}

var printOnce sync.Map

func printFirst(b *testing.B, key, out string) {
	b.Helper()
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Println(out)
	}
}

// simTraceCycles is the stimulus depth of the simulator micro-benchmarks;
// with 64 parallel patterns per word, one run is simTraceCycles×64
// pattern-cycles.
const simTraceCycles = 256

// simBenchSet lists the designs the simulator micro-benches run on
// (the reduced set, or all nine under -benchfull).
func simBenchSet() []string {
	if ds := cfg().Designs; len(ds) > 0 {
		return ds
	}
	var names []string
	for _, d := range bench.Catalog() {
		names = append(names, d.Name)
	}
	return names
}

// simBenchMapped tech-maps a benchmark for the simulator micro-benches.
func simBenchMapped(b *testing.B, name string) *sim.Machine {
	b.Helper()
	info, err := bench.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	mapped, err := experiments.Mapped(info)
	if err != nil {
		b.Fatal(err)
	}
	m, err := sim.Compile(mapped)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkSimTrace measures the compiled execution core: one op replays
// simTraceCycles cycles of random stimulus through RunTraceInto. The
// extra metric is ns per pattern-cycle (64 patterns per word); steady
// state must report 0 allocs/op.
func BenchmarkSimTrace(b *testing.B) {
	for _, name := range simBenchSet() {
		b.Run(name, func(b *testing.B) {
			m := simBenchMapped(b, name)
			pis := m.Netlist().SortedPINames()
			if err := m.BindNames(pis); err != nil {
				b.Fatal(err)
			}
			stim := testgen.RandomBlocks(len(pis), simTraceCycles, 1)
			var tr sim.Trace
			m.RunTraceInto(&tr, stim) // warm the buffers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.RunTraceInto(&tr, stim)
			}
			b.StopTimer()
			perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			b.ReportMetric(perOp/float64(simTraceCycles*64), "ns/pattern-cycle")
		})
	}
}

// BenchmarkWideTrace measures the wide-word vector engine: the same
// replay as BenchmarkSimTrace but compiled at width 8 (512 lanes), with
// wide random stimulus so every lane word carries distinct patterns. The
// denominator scales with the lane count, so ns/pattern-cycle is
// directly comparable with BenchmarkSimTrace — the ratio is the vector
// win the acceptance bar tracks.
func BenchmarkWideTrace(b *testing.B) {
	const W = 8
	for _, name := range simBenchSet() {
		b.Run(name, func(b *testing.B) {
			info, err := bench.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			mapped, err := experiments.Mapped(info)
			if err != nil {
				b.Fatal(err)
			}
			m, err := sim.CompileWidth(mapped, W)
			if err != nil {
				b.Fatal(err)
			}
			pis := m.Netlist().SortedPINames()
			if err := m.BindNames(pis); err != nil {
				b.Fatal(err)
			}
			stim := testgen.RandomBlocks(len(pis)*W, simTraceCycles, 1)
			var tr sim.Trace
			m.RunTraceInto(&tr, stim)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.RunTraceInto(&tr, stim)
			}
			b.StopTimer()
			perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			b.ReportMetric(perOp/float64(simTraceCycles*64*W), "ns/pattern-cycle")
		})
	}
}

// BenchmarkFusedKernels is the fusion ablation: the wide replay of
// BenchmarkWideTrace with the fused LUT-chain schedule disabled
// (SetFusion(false)), so the difference against BenchmarkWideTrace
// isolates what the combined pair-table kernels buy on their own.
func BenchmarkFusedKernels(b *testing.B) {
	const W = 8
	for _, name := range simBenchSet() {
		b.Run(name, func(b *testing.B) {
			info, err := bench.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			mapped, err := experiments.Mapped(info)
			if err != nil {
				b.Fatal(err)
			}
			m, err := sim.CompileWidth(mapped, W)
			if err != nil {
				b.Fatal(err)
			}
			pis := m.Netlist().SortedPINames()
			if err := m.BindNames(pis); err != nil {
				b.Fatal(err)
			}
			m.SetFusion(false)
			stim := testgen.RandomBlocks(len(pis)*W, simTraceCycles, 1)
			var tr sim.Trace
			m.RunTraceInto(&tr, stim)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.RunTraceInto(&tr, stim)
			}
			b.StopTimer()
			perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			b.ReportMetric(perOp/float64(simTraceCycles*64*W), "ns/pattern-cycle")
		})
	}
}

// BenchmarkSimStep is the baseline: the same stimulus through the legacy
// map-driven cover interpreter (per-cycle map allocation and string
// hashing), for the trace-vs-step speedup the acceptance tracks.
func BenchmarkSimStep(b *testing.B) {
	for _, name := range simBenchSet() {
		b.Run(name, func(b *testing.B) {
			info, err := bench.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			mapped, err := experiments.Mapped(info)
			if err != nil {
				b.Fatal(err)
			}
			m, err := sim.CompileReference(mapped)
			if err != nil {
				b.Fatal(err)
			}
			pis := mapped.SortedPINames()
			stim := testgen.Random(pis, simTraceCycles, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Reset()
				for _, in := range stim {
					if _, err := m.Step(in); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			b.ReportMetric(perOp/float64(simTraceCycles*64), "ns/pattern-cycle")
		})
	}
}

// Fault-scan benchmark scope: every fault of the universe sees
// faultScanPatterns broadcast patterns held faultScanCycles cycles.
const (
	faultScanPatterns = 64
	faultScanCycles   = 2
)

// faultScanSetup compiles a design and enumerates its fault universe.
func faultScanSetup(b *testing.B, name string) (*sim.Machine, []faults.Fault) {
	b.Helper()
	m := simBenchMapped(b, name)
	return m, faults.Universe(m.Netlist())
}

// BenchmarkFaultScan measures the 64-lane fault-parallel mutant engine:
// one op fault-simulates the design's whole exhaustive universe (stuck-at
// per net + single LUT-bit flips) in 64-fault batches sharing one
// compiled program. The acceptance metric is faults/sec versus
// BenchmarkFaultScanSerial on the identical broadcast stimulus (>= 8x);
// cmd/benchrepro -json-faults records the same comparison — against the
// even-stronger pattern-packed serial baseline — in BENCH_faults.json.
func BenchmarkFaultScan(b *testing.B) {
	for _, name := range simBenchSet() {
		b.Run(name, func(b *testing.B) {
			prog, u := faultScanSetup(b, name)
			scfg := faults.ScanConfig{Patterns: faultScanPatterns, Cycles: faultScanCycles, Seed: 1}
			warm := u
			if len(warm) > 64 {
				warm = warm[:64]
			}
			if _, err := faults.Scan(prog, warm, scfg); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := faults.Scan(prog, u, scfg); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(len(u))*float64(b.N)/b.Elapsed().Seconds(), "faults/sec")
		})
	}
}

// BenchmarkFaultScanSerial is the serial per-fault baseline for the same
// workload: every fault is a netlist clone + mutation + recompile + full
// replay of the identical broadcast stimulus (faults.SerialScan, the
// engine's differential oracle). A stride sample bounds the run; the
// metric is still faults/sec.
func BenchmarkFaultScanSerial(b *testing.B) {
	for _, name := range simBenchSet() {
		b.Run(name, func(b *testing.B) {
			prog, u := faultScanSetup(b, name)
			if len(u) > 128 {
				stride := len(u) / 128
				sample := make([]faults.Fault, 0, 128)
				for i := 0; i < len(u) && len(sample) < 128; i += stride {
					sample = append(sample, u[i])
				}
				u = sample
			}
			scfg := faults.ScanConfig{Patterns: faultScanPatterns, Cycles: faultScanCycles, Seed: 1}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := faults.SerialScan(prog, u, scfg); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(len(u))*float64(b.N)/b.Elapsed().Seconds(), "faults/sec")
		})
	}
}

// BenchmarkTable1 regenerates Table 1: tiled layout statistics (CLB
// counts, area overhead, timing overhead vs an untiled layout).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(cfg())
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "table1", experiments.FormatTable1(rows))
	}
}

// BenchmarkFigure3 regenerates Figure 3: % of tiles affected as the
// introduced test logic grows from 1 to 100 CLBs.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Figure3(cfg())
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "fig3", experiments.FormatSeries(
			"Figure 3. Number of Tiles Affected by Logic Introduction (% affected)", "#CLBs", series))
	}
}

// BenchmarkFigure4 regenerates Figure 4: the maximum per-point test-logic
// size for 1..100 spread test points.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Figure4(cfg())
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "fig4", experiments.FormatSeries(
			"Figure 4. Maximum Test Logic Size (CLBs per point)", "#points", series))
	}
}

// BenchmarkFigure5 regenerates Figure 5: place-and-route speedup of
// tile-local updates over full re-place-and-route for tile sizes of 2.5,
// 5, 15 and 25% of the device.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure5(cfg())
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "fig5", experiments.FormatFigure5(rows))
	}
}

// Benchmark_AblationOverhead sweeps the resource-slack knob (10/20/30%),
// the §3.2 tradeoff.
func Benchmark_AblationOverhead(b *testing.B) {
	c := cfg()
	c.Designs = []string{"c499", "s9234"}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.OverheadSweep(c)
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "abl-overhead", experiments.FormatOverheadSweep(rows))
	}
}

// Benchmark_AblationClusteredPoints runs Figure 4's clustered-distribution
// variant (end of §6.1).
func Benchmark_AblationClusteredPoints(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Figure4Clustered(cfg())
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "abl-clustered", experiments.FormatSeries(
			"Ablation: Figure 4, clustered test points", "#points", series))
	}
}

// Benchmark_AblationBoundaries compares uniform tile boundaries against
// the min-crossing sweep ("inter-tile interconnect is minimized").
func Benchmark_AblationBoundaries(b *testing.B) {
	c := cfg()
	c.Designs = []string{"9sym", "c880"}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.BoundaryAblation(c)
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "abl-bounds", experiments.FormatBoundaryAblation(rows))
	}
}

// BenchmarkDebugLoop measures a complete detect→localize→correct campaign
// on c880 with an injected design error — the end-to-end cost the paper
// optimizes.
func BenchmarkDebugLoop(b *testing.B) {
	info, err := bench.ByName("c880")
	if err != nil {
		b.Fatal(err)
	}
	golden, err := synth.TechMap(info.Build())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		impl := golden.Clone()
		if _, err := faults.InjectRandom(impl, 1); err != nil {
			b.Fatal(err)
		}
		lay, err := core.BuildMapped(impl, core.Spec{Seed: 1, PlaceEffort: 0.3, TileFrac: 0.1})
		if err != nil {
			b.Fatal(err)
		}
		sess, err := debug.NewSession(golden, lay, 1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sess.RunLoop(3, 8, 4, 3, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildDES measures the initial tiled place-and-route of the
// largest benchmark.
func BenchmarkBuildDES(b *testing.B) {
	nl := bench.DES()
	mapped, err := synth.TechMap(nl)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildMapped(mapped.Clone(), core.Spec{Seed: 1, PlaceEffort: 0.3, TileFrac: 0.1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTechMapMIPS measures the front end on the biggest netlist.
func BenchmarkTechMapMIPS(b *testing.B) {
	nl := bench.MIPS()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := synth.TechMap(nl); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEcoRound measures one localization-style physical update on
// the transactional engine: a checkpoint, a two-net probe insertion
// through ApplyDelta on the persistent router, and the rollback — the
// unit of speculative work the debug loop pays per round (DESIGN.md
// §11, BENCH_eco.json).
func BenchmarkEcoRound(b *testing.B) {
	info, err := bench.ByName("c880")
	if err != nil {
		b.Fatal(err)
	}
	golden, err := synth.TechMap(info.Build())
	if err != nil {
		b.Fatal(err)
	}
	lay, err := core.BuildMapped(golden.Clone(), core.Spec{Seed: 1, PlaceEffort: 0.3, TileFrac: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	digest := lay.StateDigest()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := lay.Checkpoint()
		d, err := experiments.ProbeDelta(lay, i%4)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := lay.ApplyDelta(d); err != nil {
			b.Fatal(err)
		}
		if err := lay.Rollback(cp); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if lay.StateDigest() != digest {
		b.Fatal("benchmark rounds leaked into the layout")
	}
}

// BenchmarkProbeSwitch measures one probe round on the pre-reserved
// debug overlay: a checkpoint, a tap-mux selection (pure configuration
// mutation, zero place/route/STA) and the rollback — the zero-CAD
// counterpart of BenchmarkEcoRound (DESIGN.md §16, BENCH_overlay.json).
func BenchmarkProbeSwitch(b *testing.B) {
	info, err := bench.ByName("c880")
	if err != nil {
		b.Fatal(err)
	}
	golden, err := synth.TechMap(info.Build())
	if err != nil {
		b.Fatal(err)
	}
	lay, err := core.BuildMapped(golden.Clone(), core.Spec{
		Seed: 1, PlaceEffort: 0.3, TileFrac: 0.1, OverlayReserve: overlay.DefaultReserve,
	})
	if err != nil {
		b.Fatal(err)
	}
	plan, err := overlay.Build(lay, overlay.DefaultChannels)
	if err != nil {
		b.Fatal(err)
	}
	// One covered net per channel, rotated per iteration so the muxes
	// actually move.
	chanNames := make([][]string, plan.Channels)
	for ci := range lay.NL.Cells {
		c := &lay.NL.Cells[ci]
		if c.Dead || c.Out == netlist.NilNet {
			continue
		}
		name := lay.NL.NetName(c.Out)
		if ch, ok := plan.Channel(name); ok {
			chanNames[ch] = append(chanNames[ch], name)
		}
	}
	sel := plan.NewSelector(lay)
	digest := lay.StateDigest()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var batch []string
		for ch := range chanNames {
			if n := len(chanNames[ch]); n > 0 {
				batch = append(batch, chanNames[ch][i%n])
			}
		}
		cp := lay.Checkpoint()
		if err := sel.Select(batch); err != nil {
			b.Fatal(err)
		}
		if err := lay.Rollback(cp); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if lay.StateDigest() != digest {
		b.Fatal("benchmark rounds leaked into the layout")
	}
}
